#include "ise/selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace jitise::ise {

namespace {

bool eligible(const ScoredCandidate& sc, const SelectConfig& config) {
  if (sc.cycles_saved_total < config.min_saving) return false;
  if (config.require_single_output && !sc.candidate.single_output()) return false;
  return sc.area_slices <= config.area_budget_slices;
}

double density(const ScoredCandidate& sc) {
  return sc.cycles_saved_total / std::max(1.0, sc.area_slices);
}

/// Shared by select_greedy and IncrementalSelector so the incremental path
/// is equal-by-construction: walk a density-sorted index order, take every
/// eligible candidate that still fits the area budget and the slot cap.
Selection greedy_sweep(std::span<const ScoredCandidate> scored,
                       std::span<const std::size_t> order,
                       const SelectConfig& config) {
  Selection sel;
  for (std::size_t i : order) {
    if (sel.chosen.size() >= config.max_instructions) break;
    const ScoredCandidate& sc = scored[i];
    if (!eligible(sc, config)) continue;
    if (sel.total_area + sc.area_slices > config.area_budget_slices) continue;
    sel.chosen.push_back(i);
    sel.total_saving += sc.cycles_saved_total;
    sel.total_area += sc.area_slices;
  }
  std::sort(sel.chosen.begin(), sel.chosen.end());
  return sel;
}

}  // namespace

Selection select_greedy(std::span<const ScoredCandidate> scored,
                        const SelectConfig& config) {
  std::vector<std::size_t> order(scored.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = density(scored[a]);
    const double db = density(scored[b]);
    if (da != db) return da > db;
    return a < b;  // deterministic tie-break
  });
  return greedy_sweep(scored, order, config);
}

void IncrementalSelector::extend(std::span<const ScoredCandidate> scored) {
  if (scored.size() <= absorbed_) return;
  const auto by_density = [&](std::size_t a, std::size_t b) {
    const double da = density(scored[a]);
    const double db = density(scored[b]);
    if (da != db) return da > db;
    return a < b;
  };
  const std::size_t old = order_.size();
  for (std::size_t i = absorbed_; i < scored.size(); ++i) order_.push_back(i);
  std::sort(order_.begin() + static_cast<std::ptrdiff_t>(old), order_.end(),
            by_density);
  std::inplace_merge(order_.begin(),
                     order_.begin() + static_cast<std::ptrdiff_t>(old),
                     order_.end(), by_density);
  absorbed_ = scored.size();
}

Selection IncrementalSelector::current(
    std::span<const ScoredCandidate> scored) const {
  return greedy_sweep(scored.first(absorbed_), order_, config_);
}

Selection select_knapsack(std::span<const ScoredCandidate> scored,
                          const SelectConfig& config,
                          double area_granularity) {
  // Discretize area; respect the slot cap by a 2-D DP (capacity x slots kept
  // implicit: slots rarely bind, so run capacity DP and trim afterwards —
  // if the slot cap binds, fall back to greedy which honours it exactly).
  const auto capacity = static_cast<std::size_t>(
      std::floor(config.area_budget_slices / area_granularity));
  std::vector<std::size_t> items;
  for (std::size_t i = 0; i < scored.size(); ++i)
    if (eligible(scored[i], config)) items.push_back(i);

  // Stage-indexed DP table: dp[k][c] is the best saving using the first k
  // items within discretized capacity c. The previous rolling array with
  // per-item take flags depended on a subtle invariant (stale flags are
  // harmless only because the backtrack scans stages strictly downward from
  // the last improver); the explicit table makes reconstruction correctness
  // a local property, asserted against a brute-force optimum in ise_test.
  std::vector<std::vector<double>> dp(
      items.size() + 1, std::vector<double>(capacity + 1, 0.0));
  for (std::size_t k = 0; k < items.size(); ++k) {
    const ScoredCandidate& sc = scored[items[k]];
    const auto w = static_cast<std::size_t>(
        std::ceil(sc.area_slices / area_granularity));
    for (std::size_t c = 0; c <= capacity; ++c) {
      dp[k + 1][c] = dp[k][c];
      if (c >= w) {
        const double with = dp[k][c - w] + sc.cycles_saved_total;
        if (with > dp[k + 1][c]) dp[k + 1][c] = with;
      }
    }
  }

  Selection sel;
  std::size_t c = capacity;
  for (std::size_t k = items.size(); k-- > 0;) {
    // Item k was taken at capacity c exactly when the take branch strictly
    // won above (skipped items copy dp[k][c] bit-for-bit).
    if (dp[k + 1][c] <= dp[k][c]) continue;
    const ScoredCandidate& sc = scored[items[k]];
    sel.chosen.push_back(items[k]);
    sel.total_saving += sc.cycles_saved_total;
    sel.total_area += sc.area_slices;
    c -= static_cast<std::size_t>(std::ceil(sc.area_slices / area_granularity));
  }
  if (sel.chosen.size() > config.max_instructions)
    return select_greedy(scored, config);
  std::sort(sel.chosen.begin(), sel.chosen.end());
  return sel;
}

}  // namespace jitise::ise
