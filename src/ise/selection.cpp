#include "ise/selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace jitise::ise {

bool selection_eligible(const ScoredCandidate& sc,
                        const SelectConfig& config) noexcept {
  // Written as !(x > 0) so a NaN estimate fails too: a degenerate score must
  // never be selected even under min_saving = 0.
  if (!(sc.cycles_saved_total > 0.0)) return false;
  if (sc.cycles_saved_total < config.min_saving) return false;
  if (config.require_single_output && !sc.candidate.single_output()) return false;
  return sc.area_slices <= config.area_budget_slices;
}

namespace {

bool eligible(const ScoredCandidate& sc, const SelectConfig& config) {
  return selection_eligible(sc, config);
}

double density(const ScoredCandidate& sc) {
  // Non-positive savings sort to the very end (and are ineligible anyway);
  // guarding here keeps the order total even for degenerate scores.
  if (!(sc.cycles_saved_total > 0.0)) return 0.0;
  return sc.cycles_saved_total / std::max(1.0, sc.area_slices);
}

/// Shared by select_greedy and IncrementalSelector so the incremental path
/// is equal-by-construction: walk a density-sorted index order, take every
/// eligible candidate that still fits the area budget and the slot cap.
Selection greedy_sweep(std::span<const ScoredCandidate> scored,
                       std::span<const std::size_t> order,
                       const SelectConfig& config) {
  Selection sel;
  for (std::size_t i : order) {
    if (sel.chosen.size() >= config.max_instructions) break;
    const ScoredCandidate& sc = scored[i];
    if (!eligible(sc, config)) continue;
    if (sel.total_area + sc.area_slices > config.area_budget_slices) continue;
    sel.chosen.push_back(i);
    sel.total_saving += sc.cycles_saved_total;
    sel.total_area += sc.area_slices;
  }
  std::sort(sel.chosen.begin(), sel.chosen.end());
  return sel;
}

}  // namespace

Selection select_greedy(std::span<const ScoredCandidate> scored,
                        const SelectConfig& config) {
  std::vector<std::size_t> order(scored.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = density(scored[a]);
    const double db = density(scored[b]);
    if (da != db) return da > db;
    return a < b;  // deterministic tie-break
  });
  return greedy_sweep(scored, order, config);
}

void IncrementalSelector::extend(std::span<const ScoredCandidate> scored) {
  if (scored.size() <= absorbed_) return;
  const auto by_density = [&](std::size_t a, std::size_t b) {
    const double da = density(scored[a]);
    const double db = density(scored[b]);
    if (da != db) return da > db;
    return a < b;
  };
  const std::size_t old = order_.size();
  for (std::size_t i = absorbed_; i < scored.size(); ++i) order_.push_back(i);
  std::sort(order_.begin() + static_cast<std::ptrdiff_t>(old), order_.end(),
            by_density);
  std::inplace_merge(order_.begin(),
                     order_.begin() + static_cast<std::ptrdiff_t>(old),
                     order_.end(), by_density);
  absorbed_ = scored.size();
}

Selection IncrementalSelector::current(
    std::span<const ScoredCandidate> scored) const {
  return greedy_sweep(scored.first(absorbed_), order_, config_);
}

Selection select_knapsack(std::span<const ScoredCandidate> scored,
                          const SelectConfig& config,
                          double area_granularity) {
  const auto capacity = static_cast<std::size_t>(
      std::floor(config.area_budget_slices / area_granularity));
  std::vector<std::size_t> items;
  for (std::size_t i = 0; i < scored.size(); ++i)
    if (eligible(scored[i], config)) items.push_back(i);

  // The FCM slot cap is a second knapsack dimension. When it cannot bind
  // (more slots than items) the slot axis collapses to one plane and the DP
  // below degenerates to the classic capacity-only table; when it can bind,
  // the explicit slot axis keeps the result the true constrained optimum —
  // the old code discarded the DP answer and fell back to greedy here,
  // silently giving up the optimality the ablation exists to measure.
  const std::size_t slots = std::min(config.max_instructions, items.size());
  if (slots == 0) return Selection{};

  // Stage-indexed DP table: dp[k][c][s] is the best saving using the first k
  // items within discretized capacity c and at most s slots. The explicit
  // table makes backtrack correctness a local property (a skipped item
  // copies its predecessor cell bit-for-bit; a taken one strictly improves
  // it), asserted against a brute-force optimum in ise_test.
  const std::size_t planes = slots + 1;
  const auto at = [&](std::size_t k, std::size_t c,
                      std::size_t s) -> std::size_t {
    return (k * (capacity + 1) + c) * planes + s;
  };
  std::vector<double> dp((items.size() + 1) * (capacity + 1) * planes, 0.0);
  for (std::size_t k = 0; k < items.size(); ++k) {
    const ScoredCandidate& sc = scored[items[k]];
    const auto w = static_cast<std::size_t>(
        std::ceil(sc.area_slices / area_granularity));
    for (std::size_t c = 0; c <= capacity; ++c) {
      for (std::size_t s = 0; s <= slots; ++s) {
        double best = dp[at(k, c, s)];
        if (c >= w && s >= 1) {
          const double with = dp[at(k, c - w, s - 1)] + sc.cycles_saved_total;
          if (with > best) best = with;
        }
        dp[at(k + 1, c, s)] = best;
      }
    }
  }

  Selection sel;
  std::size_t c = capacity;
  std::size_t s = slots;
  for (std::size_t k = items.size(); k-- > 0;) {
    // Item k was taken at (c, s) exactly when the take branch strictly won
    // above (skipped items copy dp[k][c][s] bit-for-bit).
    if (dp[at(k + 1, c, s)] <= dp[at(k, c, s)]) continue;
    const ScoredCandidate& sc = scored[items[k]];
    sel.chosen.push_back(items[k]);
    sel.total_saving += sc.cycles_saved_total;
    sel.total_area += sc.area_slices;
    c -= static_cast<std::size_t>(std::ceil(sc.area_slices / area_granularity));
    --s;
  }
  std::sort(sel.chosen.begin(), sel.chosen.end());
  return sel;
}

}  // namespace jitise::ise
