#include "ise/candidate.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/rng.hpp"

namespace jitise::ise {

void compute_io(const dfg::BlockDfg& graph, Candidate& cand) {
  cand.inputs.clear();
  cand.outputs.clear();
  const ir::Function& fn = graph.function();

  std::vector<bool> in_set(graph.size(), false);
  for (dfg::NodeId n : cand.nodes) in_set[n] = true;

  for (dfg::NodeId n : cand.nodes) {
    const ir::Instruction& inst = fn.values[graph.value_of(n)];
    for (ir::ValueId o : inst.operands) {
      const auto node = graph.node_of(o);
      const bool internal = node.has_value() && in_set[*node];
      if (!internal &&
          std::find(cand.inputs.begin(), cand.inputs.end(), o) ==
              cand.inputs.end())
        cand.inputs.push_back(o);
    }
    // Output if used outside the block, or by an in-block node not in the set.
    bool is_output = graph.used_outside(n);
    if (!is_output)
      for (dfg::NodeId s : graph.succs(n))
        if (!in_set[s]) {
          is_output = true;
          break;
        }
    if (is_output) cand.outputs.push_back(graph.value_of(n));
  }
}

std::uint64_t candidate_signature(const dfg::BlockDfg& graph,
                                  const Candidate& cand) {
  const ir::Function& fn = graph.function();
  // Local renumbering: inputs first (in cand.inputs order), then nodes in
  // topological (sorted) order.
  std::unordered_map<ir::ValueId, std::uint32_t> local;
  std::uint32_t next = 0;
  for (ir::ValueId in : cand.inputs) local.emplace(in, next++);
  for (dfg::NodeId n : cand.nodes) local.emplace(graph.value_of(n), next++);

  support::Fnv1a h;
  h.update_value<std::uint32_t>(static_cast<std::uint32_t>(cand.inputs.size()));
  for (ir::ValueId in : cand.inputs) {
    const ir::Instruction& def = fn.values[in];
    h.update_value<std::uint8_t>(static_cast<std::uint8_t>(def.type));
    // Constant inputs are baked into the datapath; their literal matters.
    if (def.op == ir::Opcode::ConstInt) {
      h.update_value<std::uint8_t>(1);
      h.update_value<std::int64_t>(def.imm);
    } else if (def.op == ir::Opcode::ConstFloat) {
      h.update_value<std::uint8_t>(2);
      h.update_value<double>(def.fimm);
    } else {
      h.update_value<std::uint8_t>(0);
    }
  }
  for (dfg::NodeId n : cand.nodes) {
    const ir::Instruction& inst = fn.values[graph.value_of(n)];
    h.update_value<std::uint8_t>(static_cast<std::uint8_t>(inst.op));
    h.update_value<std::uint8_t>(static_cast<std::uint8_t>(inst.type));
    h.update_value<std::uint32_t>(inst.aux);  // icmp/fcmp predicate
    if (inst.op == ir::Opcode::Gep) h.update_value<std::int64_t>(inst.imm);
    for (ir::ValueId o : inst.operands)
      h.update_value<std::uint32_t>(local.at(o));
  }
  // Output positions (relative to local numbering).
  for (ir::ValueId out : cand.outputs)
    h.update_value<std::uint32_t>(local.at(out));
  return h.digest();
}

}  // namespace jitise::ise
