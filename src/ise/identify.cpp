#include "ise/identify.hpp"

#include <algorithm>
#include <unordered_set>

namespace jitise::ise {

namespace {

Candidate make_candidate(const dfg::BlockDfg& graph,
                         std::vector<dfg::NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  Candidate cand;
  // The BlockDfg does not know its FuncId; callers patch `function`.
  cand.block = graph.block();
  cand.nodes = std::move(nodes);
  compute_io(graph, cand);
  return cand;
}

}  // namespace

std::vector<Candidate> find_max_misos(const dfg::BlockDfg& graph) {
  const std::size_t n = graph.size();
  // A feasible node is a MISO root iff its value escapes (used outside the
  // block or by an infeasible in-block node) or it has != 1 feasible
  // in-block consumer. Otherwise it belongs to its unique consumer's group.
  std::vector<dfg::NodeId> root(n, dfg::NodeId(~0u));
  for (std::size_t k = n; k-- > 0;) {
    const auto i = static_cast<dfg::NodeId>(k);
    if (!graph.feasible(i)) continue;
    bool escapes = graph.used_outside(i);
    dfg::NodeId unique_user = dfg::NodeId(~0u);
    unsigned feasible_users = 0;
    for (dfg::NodeId s : graph.succs(i)) {
      if (!graph.feasible(s)) {
        escapes = true;
      } else {
        ++feasible_users;
        unique_user = s;
      }
    }
    if (escapes || feasible_users != 1)
      root[i] = i;
    else
      root[i] = root[unique_user];  // already computed (s > i in topo order)
  }

  std::vector<Candidate> result;
  std::vector<std::vector<dfg::NodeId>> groups(n);
  for (dfg::NodeId i = 0; i < n; ++i)
    if (graph.feasible(i)) groups[root[i]].push_back(i);
  for (dfg::NodeId r = 0; r < n; ++r)
    if (!groups[r].empty())
      result.push_back(make_candidate(graph, std::move(groups[r])));
  return result;
}

std::vector<Candidate> find_union_misos(const dfg::BlockDfg& graph) {
  const std::size_t n = graph.size();
  // Start from the MAXMISO group assignment (recomputed here as a plain
  // node -> group map), then merge groups to a fixpoint.
  std::vector<dfg::NodeId> group(n, dfg::NodeId(~0u));
  {
    const auto misos = find_max_misos(graph);
    for (const Candidate& cand : misos)
      for (dfg::NodeId node : cand.nodes) group[node] = cand.nodes.back();
  }
  // Union-find over group representatives.
  std::vector<dfg::NodeId> parent(n);
  for (dfg::NodeId i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&](dfg::NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (dfg::NodeId i = 0; i < n; ++i) {
      if (!graph.feasible(i)) continue;
      // i is its group's output iff some user lies outside the group.
      const dfg::NodeId gi = find(group[i]);
      if (graph.used_outside(i)) continue;  // output escapes the block
      dfg::NodeId target = dfg::NodeId(~0u);
      bool mergeable = true;
      bool any_user = false;
      for (dfg::NodeId s : graph.succs(i)) {
        if (!graph.feasible(s)) {
          mergeable = false;  // consumed by memory/control: stays an output
          break;
        }
        any_user = true;
        const dfg::NodeId gs = find(group[s]);
        if (gs == gi) continue;  // internal edge
        if (target == dfg::NodeId(~0u)) target = gs;
        else if (target != gs) mergeable = false;  // users span two groups
      }
      if (!mergeable || !any_user || target == dfg::NodeId(~0u)) continue;
      parent[gi] = target;
      changed = true;
    }
  }

  std::vector<std::vector<dfg::NodeId>> members(n);
  for (dfg::NodeId i = 0; i < n; ++i)
    if (graph.feasible(i)) members[find(group[i])].push_back(i);
  std::vector<Candidate> result;
  for (dfg::NodeId r = 0; r < n; ++r)
    if (!members[r].empty())
      result.push_back(make_candidate(graph, std::move(members[r])));
  return result;
}

namespace {

/// Recursive MISO enumeration from a fixed output node. A set is a MISO of
/// root r iff it contains r, is closed under "all feasible consumers inside"
/// for non-root members, and only r's value leaves the set.
class MisoEnumerator {
 public:
  MisoEnumerator(const dfg::BlockDfg& graph, const MisoEnumConfig& config,
                 EnumResult& out)
      : graph_(graph), config_(config), out_(out), in_set_(graph.size(), false) {}

  void run() {
    for (dfg::NodeId r = 0; r < graph_.size(); ++r) {
      if (!graph_.feasible(r)) continue;
      std::fill(in_set_.begin(), in_set_.end(), false);
      in_set_[r] = true;
      size_ = 1;
      if (!expand(r)) return;  // budget exhausted
    }
  }

 private:
  /// True if `p` may join the current set: feasible, value does not escape
  /// the block, and every feasible consumer is already inside.
  bool addable(dfg::NodeId p) const {
    if (in_set_[p] || !graph_.feasible(p) || graph_.used_outside(p)) return false;
    for (dfg::NodeId s : graph_.succs(p)) {
      if (!graph_.feasible(s)) return false;  // consumed by infeasible node
      if (!in_set_[s]) return false;
    }
    return true;
  }

  /// Depth-first growth; `last` is the most recently added node. To emit
  /// each set once, candidate extensions are only drawn from predecessors of
  /// set members with index < last's "frontier key"... order is enforced by
  /// canonical smallest-extension rule below.
  bool expand(dfg::NodeId /*last*/) {
    if (++out_.steps > config_.max_steps ||
        out_.candidates.size() >= config_.max_candidates) {
      out_.truncated = true;
      return false;
    }
    if (size_ >= config_.min_size) emit();

    if (size_ >= config_.max_size) return true;
    // Collect the current frontier of addable predecessors.
    std::vector<dfg::NodeId> frontier;
    for (dfg::NodeId i = 0; i < graph_.size(); ++i) {
      if (!in_set_[i]) continue;
      for (dfg::NodeId p : graph_.preds(i))
        if (addable(p) &&
            std::find(frontier.begin(), frontier.end(), p) == frontier.end())
          frontier.push_back(p);
    }
    // Canonical generation: extend only with nodes smaller than every node
    // previously *skipped* at this branch (classic lexicographic subset
    // enumeration), implemented by iterating the frontier in descending
    // order and forbidding re-adding skipped ones deeper in the call tree.
    std::sort(frontier.begin(), frontier.end(), std::greater<>());
    std::vector<dfg::NodeId> added;
    for (dfg::NodeId p : frontier) {
      if (banned_.count(p)) continue;
      in_set_[p] = true;
      ++size_;
      if (!expand(p)) return false;
      in_set_[p] = false;
      --size_;
      banned_.insert(p);
      added.push_back(p);
    }
    for (dfg::NodeId p : added) banned_.erase(p);
    return true;
  }

  void emit() {
    std::vector<dfg::NodeId> nodes;
    for (dfg::NodeId i = 0; i < graph_.size(); ++i)
      if (in_set_[i]) nodes.push_back(i);
    out_.candidates.push_back(make_candidate(graph_, std::move(nodes)));
  }

  const dfg::BlockDfg& graph_;
  const MisoEnumConfig& config_;
  EnumResult& out_;
  std::vector<bool> in_set_;
  std::size_t size_ = 0;
  std::unordered_set<dfg::NodeId> banned_;
};

}  // namespace

EnumResult enumerate_misos(const dfg::BlockDfg& graph,
                           const MisoEnumConfig& config) {
  EnumResult result;
  MisoEnumerator(graph, config, result).run();
  return result;
}

namespace {

/// Atasu-style exact search. Nodes are decided in reverse topological order
/// (consumers before producers), which makes output status and input
/// contributions final at decision time and keeps both counts monotone, so
/// the I/O constraints prune the search tree soundly.
///
/// Convexity invariant: the partial assignment is always convex-extendable.
/// For excluded nodes we maintain reaches_in_[u] = "some path u ->* v with v
/// included exists". Including node u is illegal iff some direct successor s
/// is excluded with reaches_in_[s] (a path u -> s(out) ->* in would wrap an
/// excluded node). Paths through an *included* successor cannot introduce a
/// new violation: that successor passed the same check at its own decision
/// time, when all of its successors were already decided.
class ExactEnumerator {
 public:
  ExactEnumerator(const dfg::BlockDfg& graph, const ExactEnumConfig& config,
                  EnumResult& out)
      : graph_(graph), config_(config), out_(out) {
    const std::size_t n = graph_.size();
    state_.assign(n, Undecided);
    reaches_in_.assign(n, false);
    counted_input_node_.assign(n, false);
  }

  void run() { decide(static_cast<std::int64_t>(graph_.size()) - 1, 0, 0, 0); }

 private:
  enum State : std::uint8_t { Undecided, In, Out };

  void decide(std::int64_t idx, unsigned inputs, unsigned outputs,
              std::size_t included) {
    if (out_.truncated) return;
    if (++out_.steps > config_.max_steps ||
        out_.candidates.size() >= config_.max_candidates) {
      out_.truncated = true;
      return;
    }
    if (idx < 0) {
      if (included >= config_.min_size) emit();
      return;
    }
    const auto u = static_cast<dfg::NodeId>(idx);

    // Branch 1: include u (if feasible and convexity/IO permit).
    if (graph_.feasible(u) && !breaks_convexity_if_included(u)) {
      bool is_output = graph_.used_outside(u);
      if (!is_output)
        for (dfg::NodeId s : graph_.succs(u))
          if (state_[s] != In) {
            is_output = true;
            break;
          }
      const unsigned new_outputs = outputs + (is_output ? 1 : 0);
      if (new_outputs <= config_.max_outputs) {
        // Count and mark fresh inputs contributed by u: operands that are
        // external to the block or already-excluded in-block producers.
        std::vector<ir::ValueId> marked_ext;
        std::vector<dfg::NodeId> marked_nodes;
        unsigned new_inputs = inputs;
        const ir::Instruction& inst =
            graph_.function().values[graph_.value_of(u)];
        for (ir::ValueId o : inst.operands) {
          const auto p = graph_.node_of(o);
          if (!p.has_value()) {
            if (counted_external_.insert(o).second) {
              ++new_inputs;
              marked_ext.push_back(o);
            }
          } else if (state_[*p] == Out && !counted_input_node_[*p]) {
            counted_input_node_[*p] = true;
            ++new_inputs;
            marked_nodes.push_back(*p);
          }
        }
        if (new_inputs <= config_.max_inputs) {
          state_[u] = In;
          decide(idx - 1, new_inputs, new_outputs, included + 1);
          state_[u] = Undecided;
        }
        for (ir::ValueId o : marked_ext) counted_external_.erase(o);
        for (dfg::NodeId p : marked_nodes) counted_input_node_[p] = false;
      }
    }

    // Branch 2: exclude u. If u has an included consumer, u's value becomes
    // an input of the cut (final -- consumers are all decided).
    {
      bool feeds_included = false;
      bool reaches = false;
      for (dfg::NodeId s : graph_.succs(u)) {
        if (state_[s] == In) feeds_included = true;
        else if (state_[s] == Out && reaches_in_[s]) reaches = true;
      }
      const unsigned new_inputs = inputs + (feeds_included ? 1 : 0);
      if (new_inputs <= config_.max_inputs) {
        state_[u] = Out;
        reaches_in_[u] = feeds_included || reaches;
        if (feeds_included) counted_input_node_[u] = true;
        decide(idx - 1, new_inputs, outputs, included);
        if (feeds_included) counted_input_node_[u] = false;
        reaches_in_[u] = false;
        state_[u] = Undecided;
      }
    }
  }

  bool breaks_convexity_if_included(dfg::NodeId u) const {
    for (dfg::NodeId s : graph_.succs(u))
      if (state_[s] == Out && reaches_in_[s]) return true;
    return false;
  }

  void emit() {
    std::vector<dfg::NodeId> nodes;
    for (dfg::NodeId i = 0; i < graph_.size(); ++i)
      if (state_[i] == In) nodes.push_back(i);
    out_.candidates.push_back(make_candidate(graph_, std::move(nodes)));
  }

  const dfg::BlockDfg& graph_;
  const ExactEnumConfig& config_;
  EnumResult& out_;
  std::vector<State> state_;
  std::vector<bool> reaches_in_;          // for Out nodes: reaches an In node
  std::unordered_set<ir::ValueId> counted_external_;
  std::vector<bool> counted_input_node_;  // Out producers already counted
};

}  // namespace

EnumResult enumerate_exact(const dfg::BlockDfg& graph,
                           const ExactEnumConfig& config) {
  EnumResult result;
  ExactEnumerator(graph, config, result).run();
  // Exact enumeration produces convex cuts by construction; assert on the
  // first few in debug builds via is_convex (cheap safety net).
  return result;
}

}  // namespace jitise::ise
