// Instruction-set-extension identification algorithms (paper §III, phase 1).
//
// Three algorithms with different cost/quality trade-offs, mirroring the
// three state-of-the-art algorithm classes studied in the authors' pruning
// paper [9]:
//   - MAXMISO: linear-time partition into maximal single-output subgraphs
//     (Alippi et al.). This is the algorithm the paper's evaluation uses.
//   - MISO enumeration: all single-output convex subgraphs up to a size cap
//     (superset of MAXMISO; exponential, bounded).
//   - Exact enumeration: all convex subgraphs under input/output port
//     constraints (Atasu-style single-cut branch search; exponential,
//     bounded). Used as the quality upper-bound baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "ise/candidate.hpp"

namespace jitise::ise {

/// Partition of the feasible nodes into maximal single-output subgraphs.
/// Every feasible node belongs to exactly one returned candidate. Runs in
/// O(nodes + edges).
[[nodiscard]] std::vector<Candidate> find_max_misos(const dfg::BlockDfg& graph);

/// Union-MISO: starts from the MAXMISO partition and merges a group into
/// its consumer group whenever *all* feasible in-block users of its output
/// land in that one group (so the union stays convex and single-output).
/// Addresses the paper's §V-D observation that candidates need to grow to
/// cover more of the kernel; still a partition of the feasible nodes, with
/// candidates at least as large as MAXMISO's.
[[nodiscard]] std::vector<Candidate> find_union_misos(const dfg::BlockDfg& graph);

struct MisoEnumConfig {
  std::size_t max_size = 12;          // nodes per candidate
  std::size_t max_candidates = 5000;  // total emitted
  std::uint64_t max_steps = 1u << 20; // search-step budget
  std::size_t min_size = 2;           // skip trivial single-node cuts
};

struct EnumResult {
  std::vector<Candidate> candidates;
  std::uint64_t steps = 0;  // search nodes visited
  bool truncated = false;   // a budget was exhausted
};

/// Enumerates MISO subgraphs (single output, closed under in-set consumers).
[[nodiscard]] EnumResult enumerate_misos(const dfg::BlockDfg& graph,
                                         const MisoEnumConfig& config = {});

struct ExactEnumConfig {
  unsigned max_inputs = 4;    // FCM operand ports
  unsigned max_outputs = 1;   // FCM result ports
  std::size_t min_size = 2;
  std::uint64_t max_steps = 1u << 22;
  std::size_t max_candidates = 20000;
};

/// Exhaustive convex-cut enumeration under I/O constraints. Incremental
/// convexity and monotone I/O bounds prune the 2^n search tree; `steps`
/// reports visited search nodes so benches can show the exponential/linear
/// contrast against MAXMISO.
[[nodiscard]] EnumResult enumerate_exact(const dfg::BlockDfg& graph,
                                         const ExactEnumConfig& config = {});

}  // namespace jitise::ise
