#include "jit/observer.hpp"

#include <thread>

namespace jitise::jit {

const char* phase_name(PipelinePhase phase) noexcept {
  switch (phase) {
    case PipelinePhase::CandidateSearch: return "candidate-search";
    case PipelinePhase::Implementation: return "implementation";
    case PipelinePhase::Adaptation: return "adaptation";
  }
  return "?";
}

void TraceObserver::on_phase_exit(PipelinePhase phase, double real_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(sink_, "[asip-sp] phase %s: %.3f real-ms\n", phase_name(phase),
               real_ms);
}

void TraceObserver::on_block_searched(std::size_t block,
                                      std::size_t candidates, double real_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(sink_, "[asip-sp] block %zu: %zu candidates in %.3f real-ms\n",
               block, candidates, real_ms);
}

void TraceObserver::on_selection_refined(const ise::IsegenStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(sink_,
               "[asip-sp] isegen: %zu iterations (%zu accepted, %zu batches), "
               "saving %.1f -> %.1f%s\n",
               stats.iterations, stats.accepted, stats.batches,
               stats.seed_saving, stats.best_saving,
               stats.budget_exhausted ? ", stopped on deadline" : "");
}

void TraceObserver::on_candidate_implemented(
    const std::string& name, std::uint64_t /*sig*/,
    const cad::ImplementationResult& hw) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(sink_,
               "[asip-sp] %s: syn %.3f xst %.3f tra %.3f map %.3f par %.3f "
               "bitgen %.3f real-ms (modeled %.1f s) thread %zu\n",
               name.c_str(), hw.syn.real_ms, hw.xst.real_ms, hw.tra.real_ms,
               hw.map.real_ms, hw.par.real_ms, hw.bitgen.real_ms,
               hw.total_modeled_seconds(),
               std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void TraceObserver::on_candidate_failed(const std::string& name,
                                        std::uint64_t /*sig*/) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(sink_, "[asip-sp] %s: rejected by the tool flow (fit/route)\n",
               name.c_str());
}

void TraceObserver::on_cache_journal_sync(std::size_t flushed,
                                          bool compacted) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(sink_, "[asip-sp] cache journal: %zu records flushed%s\n",
               flushed, compacted ? ", journal compacted" : "");
}

}  // namespace jitise::jit
