// Partial-reconfiguration bitstream cache (paper §VI-A).
//
// "Much like virtual machines cache the binary code that was generated
// on-the-fly, we can cache the generated partial bitstreams for each custom
// instruction. Each candidate needs a unique identifier used as a key."
// The key is the candidate's structural signature (ise::candidate_signature),
// so identical datapaths hit across applications and runs. A size-bounded
// LRU policy models the on-disk database.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "fpga/bitgen.hpp"

namespace jitise::jit {

struct CachedImplementation {
  fpga::Bitstream bitstream;
  std::uint32_t hw_cycles = 1;
  double critical_path_ns = 0.0;
  double area_slices = 0.0;
  std::size_t cells = 0;
  /// What generating this bitstream cost (modeled seconds) — the amount a
  /// cache hit saves.
  double generation_seconds = 0.0;
};

/// Thread-safe: all operations are mutex-guarded, so concurrent specializer
/// tasks (or concurrent specialize() calls sharing one cache) may look up
/// and insert freely. `snapshot()` copies entries under the lock so the
/// returned view is consistent even while other threads keep mutating.
class BitstreamCache {
 public:
  /// `capacity_bytes` bounds the sum of cached bitstream sizes (LRU
  /// eviction); 0 means unbounded.
  explicit BitstreamCache(std::size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  /// Returns the entry and refreshes its LRU position.
  std::optional<CachedImplementation> lookup(std::uint64_t signature);

  void insert(std::uint64_t signature, CachedImplementation entry);

  [[nodiscard]] std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  [[nodiscard]] std::size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  [[nodiscard]] std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }
  [[nodiscard]] bool contains(std::uint64_t signature) const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.count(signature) != 0;
  }

  void clear();

  /// Consistent snapshot of all entries (most recently used first) for
  /// serialization and inspection.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, CachedImplementation>>
  snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::uint64_t, CachedImplementation>> out;
    out.reserve(lru_.size());
    for (const Node& node : lru_) out.emplace_back(node.signature, node.entry);
    return out;
  }

 private:
  struct Node {
    std::uint64_t signature;
    CachedImplementation entry;
  };
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Node>::iterator> map_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace jitise::jit
