// Partial-reconfiguration bitstream cache (paper §VI-A).
//
// "Much like virtual machines cache the binary code that was generated
// on-the-fly, we can cache the generated partial bitstreams for each custom
// instruction. Each candidate needs a unique identifier used as a key."
// The key is the candidate's structural signature (ise::candidate_signature),
// so identical datapaths hit across applications and runs. A size-bounded
// LRU policy models the on-disk database.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fpga/bitgen.hpp"

namespace jitise::jit {

struct CachedImplementation {
  fpga::Bitstream bitstream;
  std::uint32_t hw_cycles = 1;
  double critical_path_ns = 0.0;
  double area_slices = 0.0;
  std::size_t cells = 0;
  /// What generating this bitstream cost (modeled seconds) — the amount a
  /// cache hit saves.
  double generation_seconds = 0.0;
};

class BitstreamCache;

/// Persistence hook: mirrors every cache mutation into a durable store (the
/// append-only journal in jit/cache_io.*). The cache invokes the sink while
/// holding at least the mutated stripe's lock — `record_insert` and
/// single-entry `evict()` hold that stripe's lock, capacity eviction holds
/// all stripe locks — so per-signature journal order always matches cache
/// order; implementations must therefore only buffer (never call back into
/// the cache) from the record hooks. `sync()`/`maybe_compact()` are called
/// with no cache locks held.
class CacheJournalSink {
 public:
  virtual ~CacheJournalSink() = default;

  /// An entry was inserted or replaced (stripe lock of `signature` held).
  virtual void record_insert(std::uint64_t signature,
                             const CachedImplementation& entry) = 0;
  /// An entry was evicted — to capacity (all stripe locks held) or by
  /// policy via `evict()` (that signature's stripe lock held).
  virtual void record_evict(std::uint64_t signature) = 0;
  /// Flushes buffered records to durable storage; returns how many records
  /// were flushed. Never called under cache locks.
  virtual std::size_t sync() = 0;
  /// Opts the sink into power-loss durability: subsequent `sync()`s must
  /// reach stable storage (fdatasync), and compactions must fsync the
  /// renamed file and its directory. Default ignores the request (a sink
  /// whose crash model is process death only). Sticky once enabled.
  virtual void set_fsync(bool /*enabled*/) {}
  /// Optionally rewrites the backing store from `cache`'s live state when a
  /// size/garbage trigger fires; returns true when a compaction ran. Never
  /// called under cache locks.
  virtual bool maybe_compact(const BitstreamCache& /*cache*/) { return false; }
};

/// Thread-safe and lock-striped: signatures hash onto independent stripes,
/// each with its own mutex, so concurrent specializer tasks (app-parallel
/// bench drivers times per-candidate CAD workers) rarely contend on the hot
/// lookup/insert path. Recency is tracked by a global atomic stamp clock, so
/// eviction order and `snapshot()` order remain *global* LRU — identical to
/// the former single-mutex implementation for any serial history. Eviction
/// and `snapshot()` take all stripe locks (in index order) for a consistent
/// view.
class BitstreamCache {
 public:
  /// `capacity_bytes` bounds the sum of cached bitstream sizes (LRU
  /// eviction); 0 means unbounded. `stripes` is the lock-shard count; 1
  /// degenerates to the classic single-mutex cache.
  explicit BitstreamCache(std::size_t capacity_bytes = 0,
                          std::size_t stripes = 16)
      : capacity_(capacity_bytes), stripes_(stripes == 0 ? 1 : stripes) {}

  /// Returns the entry and refreshes its (global) LRU position.
  std::optional<CachedImplementation> lookup(std::uint64_t signature);

  void insert(std::uint64_t signature, CachedImplementation entry);

  [[nodiscard]] std::size_t entries() const {
    return entries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Pure membership probe: touches neither the hit/miss counters nor the
  /// LRU order (the pipeline uses it to skip dispatching cached work).
  [[nodiscard]] bool contains(std::uint64_t signature) const;

  /// Removes one entry (journal-replay helper for evict tombstones). Unlike
  /// capacity eviction this is *not* forwarded to the journal sink — replay
  /// must not re-journal the records it is applying. Returns whether the
  /// signature was present.
  bool erase(std::uint64_t signature);

  /// Policy eviction of one entry (the adaptive re-specialization loop
  /// dropping a stale slot): like erase(), but journaled (`record_evict`
  /// under the stripe lock) and counted in `evictions()`, so the persisted
  /// cache state and the stats agree with capacity eviction. Returns whether
  /// the signature was present.
  bool evict(std::uint64_t signature);

  /// Attaches (or detaches, with nullptr) the persistence sink. Not owned;
  /// must outlive the cache or be detached first. Attach before the cache is
  /// shared across threads — the pointer itself is unsynchronized. `clear()`
  /// and `erase()` are never journaled; a sink is expected to be attached to
  /// a cache whose journal it has itself just replayed (CacheJournal::attach).
  void set_journal(CacheJournalSink* sink) noexcept { journal_ = sink; }
  [[nodiscard]] CacheJournalSink* journal() const noexcept { return journal_; }

  void clear();

  /// Consistent snapshot of all entries (most recently used first,
  /// globally) for serialization and inspection.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, CachedImplementation>>
  snapshot() const;

 private:
  struct Node {
    std::uint64_t signature;
    CachedImplementation entry;
    std::uint64_t stamp;  // global recency; larger = more recent
  };
  /// One lock shard. Within a stripe the list is ordered by stamp
  /// descending (front = stripe's most recent), so `lru.back()` is the
  /// stripe's global-LRU representative.
  struct Stripe {
    mutable std::mutex mu;
    std::list<Node> lru;
    std::unordered_map<std::uint64_t, std::list<Node>::iterator> map;
    std::size_t bytes = 0;
  };

  [[nodiscard]] Stripe& stripe_of(std::uint64_t signature) {
    return stripes_[(signature ^ (signature >> 32)) % stripes_.size()];
  }
  [[nodiscard]] const Stripe& stripe_of(std::uint64_t signature) const {
    return stripes_[(signature ^ (signature >> 32)) % stripes_.size()];
  }

  /// Evicts globally-least-recent entries until within capacity. Takes all
  /// stripe locks (index order); callers must hold none of them.
  void evict_to_capacity();

  std::size_t capacity_;
  CacheJournalSink* journal_ = nullptr;
  std::vector<Stripe> stripes_;  // sized at construction, never reallocated
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace jitise::jit
