// Partial-reconfiguration bitstream cache (paper §VI-A).
//
// "Much like virtual machines cache the binary code that was generated
// on-the-fly, we can cache the generated partial bitstreams for each custom
// instruction. Each candidate needs a unique identifier used as a key."
// The key is the candidate's structural signature (ise::candidate_signature),
// so identical datapaths hit across applications and runs. A size-bounded
// LRU policy models the on-disk database.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "fpga/bitgen.hpp"

namespace jitise::jit {

struct CachedImplementation {
  fpga::Bitstream bitstream;
  std::uint32_t hw_cycles = 1;
  double critical_path_ns = 0.0;
  double area_slices = 0.0;
  std::size_t cells = 0;
  /// What generating this bitstream cost (modeled seconds) — the amount a
  /// cache hit saves.
  double generation_seconds = 0.0;
};

class BitstreamCache {
 public:
  /// `capacity_bytes` bounds the sum of cached bitstream sizes (LRU
  /// eviction); 0 means unbounded.
  explicit BitstreamCache(std::size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  /// Returns the entry and refreshes its LRU position.
  std::optional<CachedImplementation> lookup(std::uint64_t signature);

  void insert(std::uint64_t signature, CachedImplementation entry);

  [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] bool contains(std::uint64_t signature) const {
    return map_.count(signature) != 0;
  }

  void clear();

  /// Stable snapshot of all entries (most recently used first) for
  /// serialization and inspection.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, const CachedImplementation*>>
  snapshot() const {
    std::vector<std::pair<std::uint64_t, const CachedImplementation*>> out;
    out.reserve(lru_.size());
    for (const Node& node : lru_) out.emplace_back(node.signature, &node.entry);
    return out;
  }

 private:
  struct Node {
    std::uint64_t signature;
    CachedImplementation entry;
  };
  std::size_t capacity_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Node>::iterator> map_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace jitise::jit
