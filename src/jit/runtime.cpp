#include "jit/runtime.hpp"

#include "jit/breakeven.hpp"
#include "support/table.hpp"
#include "woolcano/asip.hpp"

namespace jitise::jit {

AdaptiveRunReport simulate_adaptive_run(const ir::Module& module,
                                        const std::string& entry,
                                        std::span<const vm::Slot> args,
                                        const AdaptiveRunConfig& config) {
  AdaptiveRunReport report;
  double now = 0.0;
  const auto mark = [&](const std::string& what) {
    report.events.push_back(TimelineEvent{now, what});
  };

  // Execution 1: profiled run on the VM.
  vm::Machine machine(module, config.specializer.cpu);
  machine.run(entry, args, 1ull << 32);
  report.one_execution_s =
      config.specializer.cpu.seconds(machine.profile().cpu_cycles);
  now += report.one_execution_s;
  mark("profiling execution complete");

  // ASIP-SP runs on the host, concurrent with further VM executions.
  const auto spec =
      specialize(module, machine.profile(), config.specializer, config.cache);
  mark(support::strf("candidate search done: %zu found, %zu selected "
                     "(%.2f ms real)",
                     spec.candidates_found, spec.candidates_selected,
                     spec.search_real_ms));
  double sp_clock = now;  // the host works while the app keeps running
  for (const auto& impl : spec.implemented) {
    sp_clock += impl.total_seconds();
    report.events.push_back(TimelineEvent{
        sp_clock, support::strf("bitstream ready: %s (%zu B)",
                                impl.name.c_str(), impl.bitstream_bytes)});
  }

  // Adaptation: partial reconfiguration of every implemented instruction.
  woolcano::ReconfigController icap(config.woolcano);
  for (const auto& ci : spec.registry.all())
    report.reconfiguration_s += icap.load(ci);
  sp_clock += report.reconfiguration_s;
  report.specialization_ready_at = sp_clock;
  now = sp_clock;
  mark(support::strf("FCM reconfigured (%llu slot loads, %.2f ms)",
                     static_cast<unsigned long long>(icap.loads()),
                     report.reconfiguration_s * 1e3));

  // Measure the accelerated execution.
  const auto diff =
      woolcano::run_adapted(module, spec.rewritten, spec.registry, entry, args,
                            config.specializer.cpu);
  report.speedup = diff.speedup();
  report.accelerated_execution_s =
      config.specializer.cpu.seconds(diff.adapted_cycles);

  // Break-even: cumulative saved execution time repays the ASIP-SP overhead.
  const double saved_per_exec =
      report.one_execution_s - report.accelerated_execution_s;
  if (saved_per_exec <= 0.0) {
    report.break_even_at = kNeverBreaksEven;
    mark("no net speedup: overhead is never amortized");
  } else {
    const double overhead = spec.sum_total_s;
    report.executions_to_break_even =
        executions_to_break_even(overhead, saved_per_exec);
    report.break_even_at =
        report.specialization_ready_at +
        static_cast<double>(report.executions_to_break_even) *
            report.accelerated_execution_s;
    now = report.break_even_at;
    mark(support::strf("break even: overhead (%.0f s) repaid after %llu "
                       "accelerated executions",
                       overhead,
                       static_cast<unsigned long long>(
                           report.executions_to_break_even)));
  }

  // Workload totals.
  const std::uint64_t n = config.workload_executions;
  report.vm_only_total_s = static_cast<double>(n) * report.one_execution_s;
  // Executions until the hardware is ready run on the VM.
  const auto before =
      static_cast<std::uint64_t>(report.specialization_ready_at /
                                 std::max(1e-12, report.one_execution_s)) +
      1;
  if (before >= n) {
    report.adaptive_total_s = report.vm_only_total_s;
  } else {
    report.adaptive_total_s =
        static_cast<double>(before) * report.one_execution_s +
        static_cast<double>(n - before) * report.accelerated_execution_s;
  }
  return report;
}

}  // namespace jitise::jit
