// Phases 2+3 — Netlist Generation and Instruction Implementation for one
// candidate. Both stages are pure with respect to pipeline state (the
// circuit database and observers are internally synchronized), so the
// pipeline may run them on any worker thread, speculatively or not: the
// result depends only on the candidate's structure and signature-seeded
// jitter, never on the project name or the thread that ran it.
#include "jit/pipeline.hpp"

namespace jitise::jit {

NetlistArtifact NetlistGenStage::run(const dfg::BlockDfg& graph,
                                     const ise::Candidate& candidate,
                                     hwlib::CircuitDb& db,
                                     const std::string& name,
                                     PipelineObserver& observer) const {
  NetlistArtifact art{datapath::create_project(graph, candidate, db, name)};
  observer.on_candidate_netlist(art.project.name, art.project.signature);
  return art;
}

ImplementationArtifact ImplementationStage::run(
    const NetlistArtifact& netlist, PipelineObserver& observer) const {
  // Stage-boundary cancellation point (runs on whichever worker owns the
  // candidate): a cancelled request skips the CAD flow before it starts, so
  // no partial implementation ever reaches the shared cache.
  config_.cancel.check();
  ImplementationArtifact art;
  art.dispatched = true;
  try {
    art.hw = cad::implement_candidate(netlist.project, config_.flow);
  } catch (const fpga::CadError&) {
    art.failed = true;
    observer.on_candidate_failed(netlist.project.name,
                                 netlist.project.signature);
    return art;
  }
  observer.on_candidate_implemented(netlist.project.name,
                                    netlist.project.signature, art.hw);
  return art;
}

}  // namespace jitise::jit
