// SpecializationPipeline — composes the four ASIP-SP stages and submits the
// per-candidate CAD fan-out as `Phase::Cad` tasks on the executor.
//
// Concurrency model: every CAD result is keyed by candidate *signature* and
// written into a pre-created slot with a stable address. Dispatch (slot
// creation, dedup, cache probing) happens only on the pipeline thread;
// workers write only into their own slot. With `overlap_phases`, the search
// stage's per-block callback streams the provisional selection into CAD
// tasks while search keeps running — safe because CAD results are
// numerically name-independent (all jitter is signature-seeded), so
// speculative runs use placeholder names and the serial tail attaches the
// canonical position-dependent name afterwards.
//
// There is no per-phase worker budget anymore: search, estimation and CAD
// tasks share one executor and idle workers steal across phases, so the old
// `resolve_search_jobs` ceiling-half split (and the idle half it stranded
// after search finished) is gone. The executor is borrowed when the caller
// owns a long-lived one (the server's shared pool); a direct call with a
// parallel config gets a run-scoped private pool.
#include "jit/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <optional>
#include <unordered_map>

#include "support/stopwatch.hpp"
#include "support/work_stealing_pool.hpp"

namespace jitise::jit {

namespace {

std::string hex_signature(std::uint64_t sig) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(sig));
  return buf;
}

/// The pre-refactor naming scheme for selected candidates, kept verbatim so
/// registry contents and reports stay byte-identical across the refactor.
std::string candidate_name(const ir::Module& module,
                           const ise::Candidate& cand, std::size_t k) {
  return "ci_" + module.name + "_f" + std::to_string(cand.function) + "_b" +
         std::to_string(cand.block) + "_" + std::to_string(k);
}

}  // namespace

SpecializationResult SpecializationPipeline::run(const ir::Module& module,
                                                 const vm::Profile& profile) {
  hwlib::CircuitDb db;
  PipelineObserver& obs = observers_;

  const unsigned jobs = config_.jobs != 0
                            ? config_.jobs
                            : support::WorkStealingPool::default_workers();
  // Back-compat: `search_jobs` once sized a dedicated search pool. Today 1
  // still forces the serial per-block loop, and any other value opts search
  // into the executor — whose width, not this field, decides the actual
  // parallelism.
  const unsigned search_width =
      config_.search_jobs != 0 ? config_.search_jobs : jobs;
  const bool hardware = config_.implement_hardware;
  const bool parallel_cad = hardware && jobs > 1;
  const bool parallel_search = search_width > 1;
  const bool overlap = parallel_cad && config_.overlap_phases;

  // Lifetime choreography, outermost first: tasks reference the artifact's
  // graphs and the slots, so both must outlive every task. `cad_group`'s
  // destructor waits for this run's CAD tasks (the unwind guarantee when
  // the executor is borrowed and lives on); a private pool is declared
  // last, so its draining destructor runs while everything tasks touch is
  // still alive.
  SearchArtifact art;
  // Deque: stable element addresses while the pipeline thread keeps growing
  // it; workers only ever touch their own pre-created slot.
  std::deque<ImplementationArtifact> slots;
  std::unordered_map<std::uint64_t, ImplementationArtifact*> by_sig;
  support::TaskGroup cad_group;
  std::optional<support::WorkStealingPool> owned;
  std::optional<support::Stopwatch> impl_timer;

  support::Executor* exec = executor_;
  if (exec == nullptr && (parallel_cad || parallel_search)) {
    owned.emplace(std::max(jobs, search_width));
    exec = &*owned;
  }

  auto enter_implementation = [&] {
    if (impl_timer) return;
    impl_timer.emplace();
    obs.on_phase_enter(PipelinePhase::Implementation);
  };

  // Dispatches the Phase 2+3 chain for `art.scored[idx]` unless its
  // signature is already covered (cache-resident, or dispatched earlier —
  // speculatively or not). Runs inline with a serial config (jobs=1).
  auto dispatch = [&](std::size_t idx, std::string name, bool speculative) {
    const std::uint64_t sig = art.scored[idx].signature;
    if (by_sig.count(sig) != 0) return;
    if (cache_ != nullptr && cache_->contains(sig)) return;
    enter_implementation();
    slots.emplace_back();
    ImplementationArtifact* slot = &slots.back();
    by_sig.emplace(sig, slot);
    obs.on_candidate_dispatched(sig, speculative);
    // `art.scored`/`art.graphs` keep growing during overlap: capture the
    // candidate by value and the graph by stable pointee address.
    const dfg::BlockDfg* graph = art.graphs[art.graph_of[idx]].get();
    auto task = [this, graph, cand = art.scored[idx].candidate,
                 name = std::move(name), slot, &db, &obs] {
      *slot = implement_.run(netlist_.run(*graph, cand, db, name, obs), obs);
    };
    if (parallel_cad)
      exec->submit(support::Phase::Cad, cad_group, std::move(task));
    else
      task();
  };

  CandidateSearchStage::BlockScoredFn on_block;
  if (overlap) {
    on_block = [&](const SearchArtifact& partial,
                   const ise::Selection& provisional) {
      for (std::size_t idx : provisional.chosen)
        dispatch(idx,
                 "ci_" + module.name + "_spec_" +
                     hex_signature(partial.scored[idx].signature),
                 /*speculative=*/true);
    };
  }

  search_.run(module, profile, db, obs, art, on_block,
              parallel_search ? exec : nullptr, estimates_);

  std::vector<std::string> names(art.selection.chosen.size());
  for (std::size_t k = 0; k < names.size(); ++k)
    names[k] = candidate_name(
        module, art.scored[art.selection.chosen[k]].candidate, k);

  if (hardware) {
    // Stage boundary: a request cancelled during (or right after) search
    // stops before committing to the final dispatch sweep.
    config_.cancel.check();
    enter_implementation();
    for (std::size_t k = 0; k < art.selection.chosen.size(); ++k)
      dispatch(art.selection.chosen[k], names[k], /*speculative=*/false);
    if (parallel_cad) cad_group.wait();
    obs.on_phase_exit(PipelinePhase::Implementation, impl_timer->elapsed_ms());
  }

  // Stage boundary: last check before the order-sensitive serial tail (the
  // tail re-checks between candidates, never mid-mutation).
  config_.cancel.check();

  const AdaptationStage::ImplLookupFn lookup =
      [&](std::uint64_t sig) -> const ImplementationArtifact* {
    const auto it = by_sig.find(sig);
    return it == by_sig.end() ? nullptr : it->second;
  };
  const AdaptationStage::SerialCadFn serial_cad = [&](std::size_t k) {
    const std::size_t idx = art.selection.chosen[k];
    return implement_.run(
        netlist_.run(*art.graphs[art.graph_of[idx]], art.scored[idx].candidate,
                     db, names[k], obs),
        obs);
  };
  SpecializationResult result =
      adapt_.run(module, profile, art, names, lookup, serial_cad, obs);

  // Persistence tail: the adaptation stage just populated the cache, so any
  // attached journal has buffered records — flush them (and compact when
  // the size/garbage trigger fires) so a crash between specializer runs
  // never loses the bitstreams this run paid for.
  if (cache_ != nullptr && config_.sync_cache_journal) {
    if (CacheJournalSink* journal = cache_->journal()) {
      if (config_.journal_fsync) journal->set_fsync(true);
      const std::size_t flushed = journal->sync();
      const bool compacted = journal->maybe_compact(*cache_);
      obs.on_cache_journal_sync(flushed, compacted);
    }
  }
  return result;
}

}  // namespace jitise::jit
