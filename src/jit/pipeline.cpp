// SpecializationPipeline — composes the four ASIP-SP stages and owns the
// per-candidate CAD fan-out.
//
// Concurrency model: every CAD result is keyed by candidate *signature* and
// written into a pre-created slot with a stable address. Dispatch (slot
// creation, dedup, cache probing) happens only on the pipeline thread;
// workers write only into their own slot. With `overlap_phases`, the search
// stage's per-block callback streams the provisional selection into the pool
// while search keeps running — safe because CAD results are numerically
// name-independent (all jitter is signature-seeded), so speculative runs use
// placeholder names and the serial tail attaches the canonical
// position-dependent name afterwards.
#include "jit/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <optional>
#include <unordered_map>

#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace jitise::jit {

namespace {

std::string hex_signature(std::uint64_t sig) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(sig));
  return buf;
}

/// The pre-refactor naming scheme for selected candidates, kept verbatim so
/// registry contents and reports stay byte-identical across the refactor.
std::string candidate_name(const ir::Module& module,
                           const ise::Candidate& cand, std::size_t k) {
  return "ci_" + module.name + "_f" + std::to_string(cand.function) + "_b" +
         std::to_string(cand.block) + "_" + std::to_string(k);
}

}  // namespace

SpecializationResult SpecializationPipeline::run(const ir::Module& module,
                                                 const vm::Profile& profile) {
  hwlib::CircuitDb db;
  PipelineObserver& obs = observers_;

  const unsigned jobs =
      config_.jobs != 0 ? config_.jobs : support::ThreadPool::default_jobs();
  const bool hardware = config_.implement_hardware;
  const bool overlap = hardware && config_.overlap_phases && jobs > 1;
  // One jobs budget, split across the phases that actually run
  // concurrently: with overlap, search workers and CAD workers coexist and
  // split `jobs`; staged (or estimation-only) runs give search the whole
  // budget because the CAD pool only spins up after search finishes.
  const unsigned search_workers = config_.resolve_search_jobs(jobs, overlap);
  const unsigned cad_workers =
      overlap ? std::max(1u, jobs - std::min(jobs - 1, search_workers)) : jobs;

  // Declared before the pool: workers reference the artifact's graphs, so it
  // must outlive the pool even when an exception unwinds this frame.
  SearchArtifact art;
  // Deque: stable element addresses while the pipeline thread keeps growing
  // it; workers only ever touch their own pre-created slot.
  std::deque<ImplementationArtifact> slots;
  std::unordered_map<std::uint64_t, ImplementationArtifact*> by_sig;
  std::optional<support::ThreadPool> pool;
  std::optional<support::Stopwatch> impl_timer;

  auto enter_implementation = [&] {
    if (impl_timer) return;
    impl_timer.emplace();
    obs.on_phase_enter(PipelinePhase::Implementation);
  };

  // Dispatches the Phase 2+3 chain for `art.scored[idx]` unless its
  // signature is already covered (cache-resident, or dispatched earlier —
  // speculatively or not). Runs inline when no pool exists (jobs=1).
  auto dispatch = [&](std::size_t idx, std::string name, bool speculative) {
    const std::uint64_t sig = art.scored[idx].signature;
    if (by_sig.count(sig) != 0) return;
    if (cache_ != nullptr && cache_->contains(sig)) return;
    enter_implementation();
    slots.emplace_back();
    ImplementationArtifact* slot = &slots.back();
    by_sig.emplace(sig, slot);
    obs.on_candidate_dispatched(sig, speculative);
    // `art.scored`/`art.graphs` keep growing during overlap: capture the
    // candidate by value and the graph by stable pointee address.
    const dfg::BlockDfg* graph = art.graphs[art.graph_of[idx]].get();
    auto task = [this, graph, cand = art.scored[idx].candidate,
                 name = std::move(name), slot, &db, &obs] {
      *slot = implement_.run(netlist_.run(*graph, cand, db, name, obs), obs);
    };
    if (pool)
      pool->submit(std::move(task));
    else
      task();
  };

  CandidateSearchStage::BlockScoredFn on_block;
  if (overlap) {
    pool.emplace(cad_workers);
    on_block = [&](const SearchArtifact& partial,
                   const ise::Selection& provisional) {
      for (std::size_t idx : provisional.chosen)
        dispatch(idx,
                 "ci_" + module.name + "_spec_" +
                     hex_signature(partial.scored[idx].signature),
                 /*speculative=*/true);
    };
  }

  search_.run(module, profile, db, obs, art, on_block, search_workers,
              estimates_);

  std::vector<std::string> names(art.selection.chosen.size());
  for (std::size_t k = 0; k < names.size(); ++k)
    names[k] = candidate_name(
        module, art.scored[art.selection.chosen[k]].candidate, k);

  if (hardware) {
    // Stage boundary: a request cancelled during (or right after) search
    // stops before committing to the final dispatch sweep.
    config_.cancel.check();
    if (!pool && jobs > 1 && art.selection.chosen.size() > 1)
      pool.emplace(static_cast<unsigned>(
          std::min<std::size_t>(cad_workers, art.selection.chosen.size())));
    enter_implementation();
    for (std::size_t k = 0; k < art.selection.chosen.size(); ++k)
      dispatch(art.selection.chosen[k], names[k], /*speculative=*/false);
    if (pool) pool->wait_all();
    obs.on_phase_exit(PipelinePhase::Implementation, impl_timer->elapsed_ms());
  }

  // Stage boundary: last check before the order-sensitive serial tail (the
  // tail re-checks between candidates, never mid-mutation).
  config_.cancel.check();

  const AdaptationStage::ImplLookupFn lookup =
      [&](std::uint64_t sig) -> const ImplementationArtifact* {
    const auto it = by_sig.find(sig);
    return it == by_sig.end() ? nullptr : it->second;
  };
  const AdaptationStage::SerialCadFn serial_cad = [&](std::size_t k) {
    const std::size_t idx = art.selection.chosen[k];
    return implement_.run(
        netlist_.run(*art.graphs[art.graph_of[idx]], art.scored[idx].candidate,
                     db, names[k], obs),
        obs);
  };
  SpecializationResult result =
      adapt_.run(module, profile, art, names, lookup, serial_cad, obs);

  // Persistence tail: the adaptation stage just populated the cache, so any
  // attached journal has buffered records — flush them (and compact when
  // the size/garbage trigger fires) so a crash between specializer runs
  // never loses the bitstreams this run paid for.
  if (cache_ != nullptr && config_.sync_cache_journal) {
    if (CacheJournalSink* journal = cache_->journal()) {
      if (config_.journal_fsync) journal->set_fsync(true);
      const std::size_t flushed = journal->sync();
      const bool compacted = journal->maybe_compact(*cache_);
      obs.on_cache_journal_sync(flushed, compacted);
    }
  }
  return result;
}

}  // namespace jitise::jit
