// The ASIP Specialization Process as an explicit staged pipeline.
//
// The paper's three phases (Fig. 1/2) plus the adaptation phase map onto
// four composable stages behind narrow interfaces, each producing a typed
// artifact:
//
//   CandidateSearchStage  prune -> identify -> estimate -> select
//                         -> SearchArtifact
//   NetlistGenStage       datapath project creation (per candidate)
//                         -> NetlistArtifact
//   ImplementationStage   CAD flow syn..bitgen (per candidate)
//                         -> ImplementationArtifact
//   AdaptationStage       cache/registry/accounting serial tail + rewrite
//                         -> SpecializationResult
//
// SpecializationPipeline composes them and submits all parallel work as
// phase-tagged tasks (`Phase::Search` / `Phase::Estimate` / `Phase::Cad`)
// through one support::Executor — either a borrowed, long-lived executor
// (the server's shared WorkStealingPool, so many sessions share one bounded
// worker set) or a pipeline-private pool for direct `specialize()` calls.
// There is no static worker split between phases: an idle worker steals
// whichever phase is backed up. With `SpecializerConfig::overlap_phases`,
// Phase 1 overlaps Phases 2+3: after each pruned block is scored,
// candidates in the provisional (incremental) selection already stream into
// CAD tasks. Results stay bit-identical to the staged serial run because
// CAD results are keyed by candidate signature (all jitter is
// signature-seeded and numerically name-independent) and everything
// order-sensitive runs in the AdaptationStage tail in final selection
// order.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "datapath/project.hpp"
#include "jit/observer.hpp"
#include "jit/specializer.hpp"
#include "support/executor.hpp"

namespace jitise::jit {

/// Phase-1 output: everything candidate search learned, plus the graphs the
/// later stages need (graphs are owned here so candidate node ids stay
/// valid for netlist generation and program snapshotting).
struct SearchArtifact {
  ise::PruneResult prune;
  std::vector<std::unique_ptr<dfg::BlockDfg>> graphs;  // one per pruned block
  std::vector<ise::ScoredCandidate> scored;            // all found candidates
  std::vector<estimation::CandidateEstimate> estimates;  // parallel to scored
  std::vector<std::size_t> graph_of;  // scored index -> graphs index
  ise::Selection selection;           // indices into `scored`
  ise::IsegenStats isegen;            // filled when Selector::Isegen ran
  double search_real_ms = 0.0;
};

class CandidateSearchStage {
 public:
  /// Invoked on the pipeline thread after each pruned block's candidates
  /// are scored: `partial` is the artifact so far (graphs/scored grow as
  /// blocks complete), `provisional` the incremental selection over it.
  using BlockScoredFn = std::function<void(const SearchArtifact& partial,
                                           const ise::Selection& provisional)>;

  explicit CandidateSearchStage(const SpecializerConfig& config)
      : config_(config) {}

  /// Fills `out` in place (rather than returning it) so the caller can give
  /// the artifact a lifetime enclosing any executor tasks referencing its
  /// graphs — even on exception unwind.
  ///
  /// With an `executor` (of more than one worker), each pruned block runs
  /// as a `Phase::Search` task (DFG construction, MAXMISO / UnionMISO
  /// identification) chaining a `Phase::Estimate` task (estimation +
  /// scoring); a serial reducer on the calling thread absorbs block results
  /// strictly in block order, so the artifact, every observer event
  /// asserted by tests, and the `on_block` stream are bit-identical to the
  /// `executor == nullptr` serial loop.
  ///
  /// `estimates` (optional) memoizes whole-candidate estimation by
  /// signature; estimates are pure functions of candidate structure, so the
  /// artifact is bit-identical with or without it.
  void run(const ir::Module& module, const vm::Profile& profile,
           hwlib::CircuitDb& db, PipelineObserver& observer,
           SearchArtifact& out, const BlockScoredFn& on_block = {},
           support::Executor* executor = nullptr,
           estimation::EstimateCache* estimates = nullptr) const;

 private:
  const SpecializerConfig& config_;
};

/// Phase-2 output for one candidate.
struct NetlistArtifact {
  datapath::CadProject project;
};

class NetlistGenStage {
 public:
  [[nodiscard]] NetlistArtifact run(const dfg::BlockDfg& graph,
                                    const ise::Candidate& candidate,
                                    hwlib::CircuitDb& db,
                                    const std::string& name,
                                    PipelineObserver& observer) const;
};

/// Phase-3 output for one candidate.
struct ImplementationArtifact {
  bool dispatched = false;  // a CAD run produced (or rejected) this artifact
  bool failed = false;      // the tool flow rejected the candidate (fit/route)
  cad::ImplementationResult hw;
};

class ImplementationStage {
 public:
  explicit ImplementationStage(const SpecializerConfig& config)
      : config_(config) {}

  [[nodiscard]] ImplementationArtifact run(const NetlistArtifact& netlist,
                                           PipelineObserver& observer) const;

 private:
  const SpecializerConfig& config_;
};

class AdaptationStage {
 public:
  /// Resolves a pre-generated implementation for a candidate signature
  /// (nullptr when nothing was dispatched for it).
  using ImplLookupFn =
      std::function<const ImplementationArtifact*(std::uint64_t signature)>;
  /// Runs the per-candidate CAD chain serially for selection position `k`
  /// (fallback when a dispatch-time cache entry was evicted).
  using SerialCadFn =
      std::function<ImplementationArtifact(std::size_t k)>;

  AdaptationStage(const SpecializerConfig& config, BitstreamCache* cache)
      : config_(config), cache_(cache) {}

  /// The order-sensitive serial tail: cache population, cycle accounting,
  /// registry insertion and the binary rewrite, in final selection order.
  /// `search` stays borrowed (only `prune` is moved out of it) because the
  /// serial-CAD fallback still reads its graphs mid-run.
  [[nodiscard]] SpecializationResult run(const ir::Module& module,
                                         const vm::Profile& profile,
                                         SearchArtifact& search,
                                         std::span<const std::string> names,
                                         const ImplLookupFn& lookup,
                                         const SerialCadFn& serial_cad,
                                         PipelineObserver& observer) const;

 private:
  const SpecializerConfig& config_;
  BitstreamCache* cache_;
};

class SpecializationPipeline {
 public:
  /// `cache`, `estimates` and `executor` are borrowed, may be shared across
  /// concurrent pipelines (all are internally synchronized), and may be
  /// null. With a null `executor` and a parallel config (`jobs`/
  /// `search_jobs` > 1), run() spins up a private WorkStealingPool for the
  /// duration of the run; with a non-null one (the server's shared pool),
  /// this pipeline submits its phase-tagged tasks there and owns no threads
  /// at all.
  explicit SpecializationPipeline(const SpecializerConfig& config,
                                  BitstreamCache* cache = nullptr,
                                  estimation::EstimateCache* estimates = nullptr,
                                  support::Executor* executor = nullptr)
      : config_(config),
        cache_(cache),
        estimates_(estimates),
        executor_(executor),
        search_(config_),
        implement_(config_),
        adapt_(config_, cache_) {}

  /// Registers an observer (not owned; must outlive run()).
  void add_observer(PipelineObserver* observer) { observers_.add(observer); }

  [[nodiscard]] SpecializationResult run(const ir::Module& module,
                                         const vm::Profile& profile);

 private:
  SpecializerConfig config_;
  BitstreamCache* cache_;
  estimation::EstimateCache* estimates_ = nullptr;
  support::Executor* executor_ = nullptr;
  CandidateSearchStage search_;
  NetlistGenStage netlist_;
  ImplementationStage implement_;
  AdaptationStage adapt_;
  ObserverList observers_;
};

}  // namespace jitise::jit
