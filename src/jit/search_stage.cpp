// Phase 1 — Candidate Search: prune -> identify -> estimate -> select.
//
// Candidates are scored block by block and absorbed into an incremental
// selector, so streaming consumers (the overlapped pipeline) can read a
// provisional selection after every block; the final selection is identical
// to a one-shot select_greedy over the full candidate pool.
//
// Concurrency model: every pruned block is an independent unit of work (its
// own DFG, its own candidates, its own estimates). With an executor, each
// block becomes a `Phase::Search` task (DFG construction + MAXMISO /
// UnionMISO identification) that chains a `Phase::Estimate` task
// (per-candidate estimation + scoring) — two tags so an idle worker can
// steal whichever phase is backed up. Tasks produce self-contained
// BlockSearchResults; a serial reducer on the pipeline thread absorbs them
// strictly in block order (out-of-order completions wait in their
// OrderedReducer slot), so selector state, observer events and the on_block
// stream are bit-identical to the serial loop. Shared state touched by
// workers is limited to the CircuitDb memo caches, which are internally
// synchronized and value-deterministic regardless of insertion order.
#include "jit/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "ise/identify.hpp"
#include "support/executor.hpp"
#include "support/ordered_reducer.hpp"
#include "support/stopwatch.hpp"

namespace jitise::jit {

namespace {

/// Output of a block's identification half, handed from its Search task to
/// its Estimate task.
struct IdentifiedBlock {
  std::unique_ptr<dfg::BlockDfg> graph;
  std::vector<ise::Candidate> candidates;
  std::uint64_t exec_count = 0;
  double identify_ms = 0.0;
};

/// Everything searching one pruned block produces, self-contained so it can
/// be computed on any thread and absorbed later.
struct BlockSearchResult {
  std::unique_ptr<dfg::BlockDfg> graph;
  std::vector<ise::ScoredCandidate> scored;
  std::vector<estimation::CandidateEstimate> estimates;
  double real_ms = 0.0;
  std::exception_ptr error;  // set instead of the payload on failure
};

}  // namespace

void CandidateSearchStage::run(const ir::Module& module,
                               const vm::Profile& profile, hwlib::CircuitDb& db,
                               PipelineObserver& observer, SearchArtifact& out,
                               const BlockScoredFn& on_block,
                               support::Executor* executor,
                               estimation::EstimateCache* estimates) const {
  config_.cancel.check();
  observer.on_phase_enter(PipelinePhase::CandidateSearch);
  support::Stopwatch timer;

  SearchArtifact& art = out;
  art.prune = ise::prune_blocks(module, profile, config_.cpu, config_.prune);
  ise::IncrementalSelector selector(config_.select);

  // Identification half of a block: DFG construction plus candidate
  // discovery. Deterministic per block and independent across blocks, so it
  // may run on any thread in any order.
  const auto identify_block = [&](std::size_t b) {
    // Worker-side cancellation point: lets a cancelled run's not-yet-started
    // block tasks exit immediately instead of searching to be discarded.
    config_.cancel.check();
    IdentifiedBlock ib;
    support::Stopwatch block_timer;
    const ise::PrunedBlock& blk = art.prune.blocks[b];
    ib.graph = std::make_unique<dfg::BlockDfg>(module.functions[blk.function],
                                               blk.block);
    ib.candidates = config_.identify == SpecializerConfig::Identify::UnionMiso
                        ? ise::find_union_misos(*ib.graph)
                        : ise::find_max_misos(*ib.graph);
    for (ise::Candidate& cand : ib.candidates) cand.function = blk.function;
    ib.exec_count = blk.exec_count;
    ib.identify_ms = block_timer.elapsed_ms();
    return ib;
  };

  // Estimation half: per-candidate estimation + scoring. Same thread-safety
  // story; runs as its own Phase::Estimate task when fanned out.
  const auto estimate_block = [&](IdentifiedBlock ib) {
    BlockSearchResult res;
    support::Stopwatch block_timer;
    for (ise::Candidate& cand : ib.candidates) {
      // Signature first: it keys the whole-candidate estimate memo (and,
      // later, the CAD-result slots), deduplicating structurally identical
      // candidates across blocks, apps and tenants.
      const std::uint64_t signature = ise::candidate_signature(*ib.graph, cand);
      const auto est = estimation::estimate_candidate_cached(
          *ib.graph, cand, db, config_.cpu, config_.fcm, signature, estimates);
      ise::ScoredCandidate scored;
      scored.signature = signature;
      scored.candidate = std::move(cand);
      scored.cycles_saved_total =
          est.saved_per_exec * static_cast<double>(ib.exec_count);
      scored.cycles_saved_refined =
          est.saved_per_exec_refined * static_cast<double>(ib.exec_count);
      scored.area_slices = est.area_slices;
      res.scored.push_back(std::move(scored));
      res.estimates.push_back(est);
    }
    res.graph = std::move(ib.graph);
    res.real_ms = ib.identify_ms + block_timer.elapsed_ms();
    return res;
  };

  // The serial reducer body: everything order-sensitive. Always runs on the
  // pipeline thread, strictly in block order — this is what keeps any
  // executor schedule bit-identical to the serial loop.
  const auto absorb = [&](std::size_t b, BlockSearchResult&& res) {
    // Cancellation point: between blocks, on the pipeline thread, before
    // the block's results touch the artifact — a cancelled search leaves a
    // consistent prefix of absorbed blocks.
    config_.cancel.check();
    observer.on_block_searched(b, res.scored.size(), res.real_ms);
    const std::size_t graph_index = art.graphs.size();
    for (std::size_t i = 0; i < res.scored.size(); ++i) {
      art.scored.push_back(std::move(res.scored[i]));
      art.estimates.push_back(res.estimates[i]);
      art.graph_of.push_back(graph_index);
    }
    art.graphs.push_back(std::move(res.graph));

    selector.extend(art.scored);
    const ise::Selection provisional = selector.current(art.scored);
    observer.on_block_scored(b, art.scored.size(), provisional.chosen.size());
    if (on_block) on_block(art, provisional);
  };

  const std::size_t nblocks = art.prune.blocks.size();
  if (executor == nullptr || executor->workers() <= 1 || nblocks <= 1) {
    for (std::size_t b = 0; b < nblocks; ++b)
      absorb(b, estimate_block(identify_block(b)));
  } else {
    support::OrderedReducer<BlockSearchResult> reducer(nblocks);
    // Declared after the reducer (and everything the tasks reference): its
    // destructor blocks until every task of this run finished, so even when
    // the reducer loop below throws, no task still references this frame —
    // the guarantee that makes sharing a server-wide executor safe.
    support::TaskGroup group;
    for (std::size_t b = 0; b < nblocks; ++b) {
      executor->submit(support::Phase::Search, group, [&, b] {
        // Tasks never leak exceptions into the group: every error lands in
        // the block's reducer slot so it propagates in block order below.
        try {
          // The chained Estimate task lands on this worker's own deque
          // (run next here, LIFO) unless an idle worker steals it.
          auto ib =
              std::make_shared<IdentifiedBlock>(identify_block(b));
          executor->submit(support::Phase::Estimate, group, [&, b, ib] {
            BlockSearchResult res;
            try {
              res = estimate_block(std::move(*ib));
            } catch (...) {
              res.error = std::current_exception();
            }
            reducer.put(b, std::move(res));
          });
        } catch (...) {
          BlockSearchResult res;
          res.error = std::current_exception();
          reducer.put(b, std::move(res));
        }
      });
    }
    for (std::size_t b = 0; b < nblocks; ++b) {
      BlockSearchResult res = reducer.take(b);
      if (res.error) {
        // Match serial error semantics: the first failing block (in block
        // order, not completion order) propagates; later blocks' results
        // are discarded. Quiesce our tasks first so none still references
        // this frame.
        group.wait();
        std::rethrow_exception(res.error);
      }
      absorb(b, std::move(res));
    }
    group.wait();
  }

  selector.extend(art.scored);  // no-op unless the loop never ran
  art.selection = selector.current(art.scored);

  // Final-selection override: provisional streaming above always uses the
  // incremental greedy (cheap, prefix-stable); the configured selector only
  // decides the *final* selection the adaptation tail consumes. Speculative
  // CAD dispatches for candidates that drop out are discarded by the
  // dispatch sweep, so no other stage needs to know which selector ran.
  switch (config_.selector) {
    case SpecializerConfig::Selector::Greedy:
      break;
    case SpecializerConfig::Selector::Knapsack:
      art.selection = ise::select_knapsack(art.scored, config_.select);
      break;
    case SpecializerConfig::Selector::Isegen:
      art.selection =
          ise::select_isegen(art.scored, config_.select, config_.isegen,
                             config_.cancel, &art.isegen);
      observer.on_selection_refined(art.isegen);
      break;
  }
  art.search_real_ms = timer.elapsed_ms();
  observer.on_phase_exit(PipelinePhase::CandidateSearch, art.search_real_ms);
}

}  // namespace jitise::jit
