// Phase 1 — Candidate Search: prune -> identify -> estimate -> select.
//
// Candidates are scored block by block and absorbed into an incremental
// selector, so streaming consumers (the overlapped pipeline) can read a
// provisional selection after every block; the final selection is identical
// to a one-shot select_greedy over the full candidate pool.
#include "jit/pipeline.hpp"

#include "ise/identify.hpp"
#include "support/stopwatch.hpp"

namespace jitise::jit {

void CandidateSearchStage::run(const ir::Module& module,
                               const vm::Profile& profile, hwlib::CircuitDb& db,
                               PipelineObserver& observer, SearchArtifact& out,
                               const BlockScoredFn& on_block) const {
  observer.on_phase_enter(PipelinePhase::CandidateSearch);
  support::Stopwatch timer;

  SearchArtifact& art = out;
  art.prune = ise::prune_blocks(module, profile, config_.cpu, config_.prune);
  ise::IncrementalSelector selector(config_.select);

  for (std::size_t b = 0; b < art.prune.blocks.size(); ++b) {
    const ise::PrunedBlock& blk = art.prune.blocks[b];
    auto graph = std::make_unique<dfg::BlockDfg>(
        module.functions[blk.function], blk.block);
    const std::size_t graph_index = art.graphs.size();
    auto identified = config_.identify == SpecializerConfig::Identify::UnionMiso
                          ? ise::find_union_misos(*graph)
                          : ise::find_max_misos(*graph);
    for (ise::Candidate& cand : identified) {
      cand.function = blk.function;
      const auto est = estimation::estimate_candidate(*graph, cand, db,
                                                      config_.cpu, config_.fcm);
      ise::ScoredCandidate scored;
      scored.signature = ise::candidate_signature(*graph, cand);
      scored.candidate = std::move(cand);
      scored.cycles_saved_total =
          est.saved_per_exec * static_cast<double>(blk.exec_count);
      scored.area_slices = est.area_slices;
      art.scored.push_back(std::move(scored));
      art.estimates.push_back(est);
      art.graph_of.push_back(graph_index);
    }
    art.graphs.push_back(std::move(graph));

    selector.extend(art.scored);
    const ise::Selection provisional = selector.current(art.scored);
    observer.on_block_scored(b, art.scored.size(), provisional.chosen.size());
    if (on_block) on_block(art, provisional);
  }

  selector.extend(art.scored);  // no-op unless the loop never ran
  art.selection = selector.current(art.scored);
  art.search_real_ms = timer.elapsed_ms();
  observer.on_phase_exit(PipelinePhase::CandidateSearch, art.search_real_ms);
}

}  // namespace jitise::jit
