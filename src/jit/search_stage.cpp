// Phase 1 — Candidate Search: prune -> identify -> estimate -> select.
//
// Candidates are scored block by block and absorbed into an incremental
// selector, so streaming consumers (the overlapped pipeline) can read a
// provisional selection after every block; the final selection is identical
// to a one-shot select_greedy over the full candidate pool.
//
// Concurrency model: every pruned block is an independent unit of work (its
// own DFG, its own candidates, its own estimates), so with `workers > 1`
// blocks are dispatched as tasks on a thread pool, each producing a
// self-contained BlockSearchResult. A serial reducer on the pipeline thread
// absorbs results strictly in block order (out-of-order completions wait in
// their OrderedReducer slot), so selector state, observer events and the
// on_block stream are bit-identical to the serial loop. Shared state touched
// by workers is limited to the CircuitDb memo caches, which are internally
// synchronized and value-deterministic regardless of insertion order.
#include "jit/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "ise/identify.hpp"
#include "support/ordered_reducer.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace jitise::jit {

namespace {

/// Everything searching one pruned block produces, self-contained so it can
/// be computed on any thread and absorbed later.
struct BlockSearchResult {
  std::unique_ptr<dfg::BlockDfg> graph;
  std::vector<ise::ScoredCandidate> scored;
  std::vector<estimation::CandidateEstimate> estimates;
  double real_ms = 0.0;
  std::exception_ptr error;  // set instead of the payload on failure
};

}  // namespace

void CandidateSearchStage::run(const ir::Module& module,
                               const vm::Profile& profile, hwlib::CircuitDb& db,
                               PipelineObserver& observer, SearchArtifact& out,
                               const BlockScoredFn& on_block, unsigned workers,
                               estimation::EstimateCache* estimates) const {
  config_.cancel.check();
  observer.on_phase_enter(PipelinePhase::CandidateSearch);
  support::Stopwatch timer;

  SearchArtifact& art = out;
  art.prune = ise::prune_blocks(module, profile, config_.cpu, config_.prune);
  ise::IncrementalSelector selector(config_.select);

  // The per-block body: DFG construction, identification and per-candidate
  // estimation. Deterministic per block and independent across blocks, so it
  // may run on any thread in any order.
  const auto search_block = [&](std::size_t b) {
    // Worker-side cancellation point: lets a cancelled run's not-yet-started
    // block tasks exit immediately instead of searching to be discarded.
    config_.cancel.check();
    BlockSearchResult res;
    support::Stopwatch block_timer;
    const ise::PrunedBlock& blk = art.prune.blocks[b];
    res.graph = std::make_unique<dfg::BlockDfg>(
        module.functions[blk.function], blk.block);
    auto identified = config_.identify == SpecializerConfig::Identify::UnionMiso
                          ? ise::find_union_misos(*res.graph)
                          : ise::find_max_misos(*res.graph);
    for (ise::Candidate& cand : identified) {
      cand.function = blk.function;
      // Signature first: it keys the whole-candidate estimate memo (and,
      // later, the CAD-result slots), deduplicating structurally identical
      // candidates across blocks, apps and tenants.
      const std::uint64_t signature =
          ise::candidate_signature(*res.graph, cand);
      const auto est = estimation::estimate_candidate_cached(
          *res.graph, cand, db, config_.cpu, config_.fcm, signature,
          estimates);
      ise::ScoredCandidate scored;
      scored.signature = signature;
      scored.candidate = std::move(cand);
      scored.cycles_saved_total =
          est.saved_per_exec * static_cast<double>(blk.exec_count);
      scored.area_slices = est.area_slices;
      res.scored.push_back(std::move(scored));
      res.estimates.push_back(est);
    }
    res.real_ms = block_timer.elapsed_ms();
    return res;
  };

  // The serial reducer body: everything order-sensitive. Always runs on the
  // pipeline thread, strictly in block order — this is what keeps
  // `workers=N` bit-identical to the serial loop.
  const auto absorb = [&](std::size_t b, BlockSearchResult&& res) {
    // Cancellation point: between blocks, on the pipeline thread, before
    // the block's results touch the artifact — a cancelled search leaves a
    // consistent prefix of absorbed blocks.
    config_.cancel.check();
    observer.on_block_searched(b, res.scored.size(), res.real_ms);
    const std::size_t graph_index = art.graphs.size();
    for (std::size_t i = 0; i < res.scored.size(); ++i) {
      art.scored.push_back(std::move(res.scored[i]));
      art.estimates.push_back(res.estimates[i]);
      art.graph_of.push_back(graph_index);
    }
    art.graphs.push_back(std::move(res.graph));

    selector.extend(art.scored);
    const ise::Selection provisional = selector.current(art.scored);
    observer.on_block_scored(b, art.scored.size(), provisional.chosen.size());
    if (on_block) on_block(art, provisional);
  };

  const std::size_t nblocks = art.prune.blocks.size();
  const auto pool_size =
      static_cast<unsigned>(std::min<std::size_t>(workers, nblocks));
  if (pool_size <= 1) {
    for (std::size_t b = 0; b < nblocks; ++b) absorb(b, search_block(b));
  } else {
    support::OrderedReducer<BlockSearchResult> reducer(nblocks);
    // Declared after the reducer/artifact so its destructor (which joins
    // workers) runs first even when the reducer loop below throws.
    support::ThreadPool pool(pool_size);
    for (std::size_t b = 0; b < nblocks; ++b) {
      pool.submit([&search_block, &reducer, b] {
        BlockSearchResult res;
        try {
          res = search_block(b);
        } catch (...) {
          res.error = std::current_exception();
        }
        reducer.put(b, std::move(res));
      });
    }
    for (std::size_t b = 0; b < nblocks; ++b) {
      BlockSearchResult res = reducer.take(b);
      if (res.error) {
        // Match serial error semantics: the first failing block (in block
        // order, not completion order) propagates; later blocks' results
        // are discarded. Drain the pool first so no task still references
        // this frame.
        pool.wait_all();
        std::rethrow_exception(res.error);
      }
      absorb(b, std::move(res));
    }
    pool.wait_all();
  }

  selector.extend(art.scored);  // no-op unless the loop never ran
  art.selection = selector.current(art.scored);
  art.search_real_ms = timer.elapsed_ms();
  observer.on_phase_exit(PipelinePhase::CandidateSearch, art.search_real_ms);
}

}  // namespace jitise::jit
