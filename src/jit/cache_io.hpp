// Binary serialization of the bitstream cache — the paper's §VI-A suggests
// storing generated partial bitstreams "in an on-disk database" so later
// runs (even of other applications with structurally identical candidates)
// skip hardware generation entirely.
#pragma once

#include <string>

#include "jit/cache.hpp"

namespace jitise::jit {

/// Writes all cache entries to `path` (binary, versioned, CRC-protected).
/// Throws std::runtime_error on I/O failure.
void save_cache(const BitstreamCache& cache, const std::string& path);

/// Reads a cache file; entries merge into `cache` (existing signatures are
/// overwritten). Throws std::runtime_error on I/O failure or a corrupt file.
/// Failure is all-or-nothing: the file is parsed fully before any entry is
/// committed, and if parsing fails mid-file the cache is *cleared* — callers
/// never observe a silently partial load. A file that cannot be opened at
/// all throws without touching the cache.
void load_cache(BitstreamCache& cache, const std::string& path);

}  // namespace jitise::jit
