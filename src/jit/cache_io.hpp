// Crash-safe persistence of the bitstream cache — the paper's §VI-A on-disk
// database. The cache is what collapses the ~50 min CAD overhead on warm
// runs (Table IV), so it is the one artifact that must survive process
// restarts intact.
//
// Format v2 is an **append-only journal**: an 8-byte header (the v1 magic
// with version 2) followed by CRC-framed records. Each record frames a body
// (`JRNL` record magic, body length, CRC-32 over the body) holding a
// monotonically stamped insert (signature + full entry) or evict tombstone.
// Recovery is prefix-preserving: `load_cache` replays records in file order
// and, on the first torn or corrupt record, stops and keeps every wholly
// intact record before it — a crash mid-append loses at most the record
// being written, never the accumulated cache. Compaction and full saves go
// through `<path>.tmp` + `std::rename`, so a crash at any instant leaves
// either the old file or the new one, never a hybrid.
//
// The legacy whole-file v1 format stays loadable (all-or-nothing, as
// before); `CacheJournal::attach` migrates a v1 file to v2 in one shot.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "jit/cache.hpp"

namespace jitise::jit {

/// What a `load_cache` (or `CacheJournal::attach`) replay found.
struct CacheLoadReport {
  std::uint32_t version = 0;   // file format that was parsed (1 or 2)
  std::size_t entries = 0;     // cache entry count after the load committed
  std::size_t records = 0;     // v2: journal records replayed (incl. evicts)
  std::size_t tombstones = 0;  // v2: evict records among `records`
  /// v2: a torn/corrupt tail was dropped; everything before it was kept.
  bool recovered_truncation = false;
  /// v2: byte length of the valid journal prefix (== file size when clean).
  std::uint64_t valid_bytes = 0;
};

/// Writes all cache entries to `path` in the v2 journal format (one insert
/// record per entry, oldest first, stamps 1..N so a reload reproduces the
/// LRU order exactly). Atomic: the bytes go to `<path>.tmp` and are
/// `std::rename`d over `path` only once complete. Throws std::runtime_error
/// on I/O failure — with the previous file untouched.
void save_cache(const BitstreamCache& cache, const std::string& path);

/// Legacy v1 whole-file writer (kept for migration tests and old tooling).
/// Also atomic via `<path>.tmp` + rename.
void save_cache_v1(const BitstreamCache& cache, const std::string& path);

/// Reads a cache file; entries merge into `cache` (existing signatures are
/// overwritten; evict tombstones erase). Both formats load:
///  - v2 journal: prefix-preserving — replay stops at the first torn or
///    corrupt record (frame damage or CRC mismatch) and every wholly intact
///    record before it stays committed; `recovered_truncation`/`valid_bytes`
///    report what was dropped. Never throws for tail damage.
///  - v1: all-or-nothing as before — the file is parsed fully before any
///    entry is committed, and a parse failure clears the cache and throws.
/// A file that cannot be opened, or whose 8-byte header is damaged, throws
/// without touching the cache.
CacheLoadReport load_cache(BitstreamCache& cache, const std::string& path);

/// When to rewrite the journal from live state (dropping superseded and
/// tombstoned records).
struct CompactionPolicy {
  /// Never compact a journal smaller than this (rewrite churn guard).
  std::uint64_t min_file_bytes = 64 * 1024;
  /// Compact once (records - live entries) / records exceeds this.
  double max_garbage_ratio = 0.5;
};

/// The live persistence sink: attach one to a `BitstreamCache` and every
/// insert/evict is buffered (sharded by signature, same stripe mapping as
/// the cache, so the under-lock record hooks stay stripe-local) and appended
/// to the journal file on `sync()`. `maybe_compact` rewrites the file from a
/// cache snapshot via tmp + rename when the CompactionPolicy triggers.
///
/// Threading: `record_insert`/`record_evict` are called by the cache under
/// its own locks and only touch shard buffers. `sync`, `compact` and
/// `maybe_compact` may be called from any thread not holding cache locks
/// (they serialize on an internal file mutex and may take cache locks via
/// `snapshot()`).
class CacheJournal final : public CacheJournalSink {
 public:
  explicit CacheJournal(std::string path, CompactionPolicy policy = {});
  /// Best-effort final sync (errors swallowed), then closes the file.
  ~CacheJournal() override;

  CacheJournal(const CacheJournal&) = delete;
  CacheJournal& operator=(const CacheJournal&) = delete;

  /// Warm-start entry point: replays an existing journal into `cache`
  /// (truncating a torn tail in place so appends land after the valid
  /// prefix), migrates a v1 file to v2 on the spot, or creates a fresh
  /// journal when `path` does not exist — then opens the append handle and
  /// installs itself as the cache's sink. Throws on an unopenable directory
  /// or an unreadable v1 file (v2 tail damage never throws).
  CacheLoadReport attach(BitstreamCache& cache);

  void record_insert(std::uint64_t signature,
                     const CachedImplementation& entry) override;
  void record_evict(std::uint64_t signature) override;
  /// Appends all buffered records to the journal and flushes; returns how
  /// many records were written. In fsync mode the append is also
  /// `fdatasync`ed, extending the crash model from process death to power
  /// loss.
  std::size_t sync() override;
  /// Durability mode (see CacheJournalSink::set_fsync): when enabled,
  /// `sync()` fdatasyncs the journal fd and `compact()` fsyncs the rewritten
  /// file and its directory around the rename. Plumbed from
  /// `SpecializerConfig::journal_fsync` by the pipeline's persistence tail
  /// and from `--suite-cache-fsync` by the bench drivers.
  void set_fsync(bool enabled) override {
    fsync_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool fsync_enabled() const noexcept {
    return fsync_.load(std::memory_order_relaxed);
  }
  /// `sync()` + compaction when `policy` triggers against `cache`'s live
  /// entry count; returns true when the file was rewritten.
  bool maybe_compact(const BitstreamCache& cache) override;
  /// Unconditional rewrite from `cache`'s live state (tmp + rename;
  /// exception-safe: on failure the old journal and append handle survive).
  void compact(const BitstreamCache& cache);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Records currently in the on-disk file (replayed + flushed).
  [[nodiscard]] std::uint64_t file_records() const noexcept {
    return file_records_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::vector<std::uint8_t> pending;  // framed records, ready to append
    std::size_t records = 0;
  };

  Shard& shard_of(std::uint64_t signature) {
    return shards_[(signature ^ (signature >> 32)) % shards_.size()];
  }
  void buffer_record(std::uint64_t signature,
                     const std::vector<std::uint8_t>& frame);
  /// Drains every shard (in index order) into one byte run; returns the
  /// record count drained.
  std::size_t drain_pending(std::vector<std::uint8_t>& out);

  const std::string path_;
  const CompactionPolicy policy_;
  std::vector<Shard> shards_;
  std::atomic<bool> fsync_{false};
  std::atomic<std::uint64_t> stamp_{0};
  std::atomic<std::uint64_t> file_records_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::mutex file_mu_;        // guards file_ and the append/compact sequence
  std::FILE* file_ = nullptr; // append handle; null until attach()
};

namespace testing_hooks {

/// Fault injection for the persistence tests: when set, the hook runs before
/// every physical cache-file write with the byte offset about to be written
/// and the write size. A hook that throws models a process killed mid-save —
/// the write (and everything after it) never happens. Pass nullptr to
/// restore normal writes. Not thread-safe; tests install it around
/// single-threaded save/sync calls.
using CacheIoWriteHook = std::function<void(std::uint64_t offset,
                                            std::size_t n)>;
void set_cache_io_write_hook(CacheIoWriteHook hook);

}  // namespace testing_hooks

}  // namespace jitise::jit
