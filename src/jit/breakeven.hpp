// Break-even analysis (paper §V-D).
//
// "We have followed a more sophisticated approach of computing the break
//  even time, which assumes that more input data is processed instead of
//  multiple executions of the same application. Hence, the additional
//  runtime is spent only in the parts of the code which are live, while
//  code parts that are const or dead are not affected."
//
// Model: each basic block contributes its profiled execution time t_i, its
// coverage class, and its accelerated speedup s_i (1.0 where no custom
// instruction applies). Const blocks run exactly once (first execution);
// live blocks scale with the input by a factor x >= 1. The ASIP overhead O
// is compensated when the accumulated saved time reaches O:
//
//    sum_const t_i (1 - 1/s_i)  +  x * sum_live t_i (1 - 1/s_i)  >=  O
//
// The reported break-even time is the (original-equivalent) execution time
// of the application at that point:  sum_const t_i + x* . sum_live t_i.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "vm/coverage.hpp"

namespace jitise::jit {

struct BlockTerm {
  double time_seconds = 0.0;   // profiled time of this block (one execution)
  vm::CoverageClass cls = vm::CoverageClass::Dead;
  double speedup = 1.0;        // accelerated speedup of this block
};

inline constexpr double kNeverBreaksEven = std::numeric_limits<double>::infinity();

/// Seconds of application execution until the ASIP-SP overhead is
/// compensated; kNeverBreaksEven if savings can never cover the overhead.
[[nodiscard]] double break_even_seconds(std::span<const BlockTerm> blocks,
                                        double overhead_seconds);

/// Smallest number of accelerated executions whose cumulative saving repays
/// `overhead_seconds`: ceil(overhead / saved_per_exec). An exact multiple
/// needs exactly overhead/saved executions — not one more.
/// `saved_per_exec` must be > 0.
[[nodiscard]] std::uint64_t executions_to_break_even(double overhead_seconds,
                                                     double saved_per_exec);

/// Convenience: builds the BlockTerm list from a module profile + coverage
/// report, applying `block_speedup(f, b)` per block.
template <typename SpeedupFn>
[[nodiscard]] std::vector<BlockTerm> block_terms(
    const ir::Module& module, const vm::Profile& profile,
    const vm::CoverageReport& coverage, const vm::CostModel& cost,
    SpeedupFn&& block_speedup) {
  std::vector<BlockTerm> terms;
  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    const ir::Function& fn = module.functions[f];
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      std::uint64_t cycles = 0;
      for (ir::ValueId v : fn.blocks[b].instrs)
        cycles += cost.cycles(fn.values[v].op, fn.values[v].type);
      BlockTerm term;
      term.time_seconds =
          cost.seconds(profile.block_counts[f][b] * cycles);
      term.cls = coverage.classes[f][b];
      term.speedup = block_speedup(static_cast<ir::FuncId>(f), b);
      terms.push_back(term);
    }
  }
  return terms;
}

}  // namespace jitise::jit
