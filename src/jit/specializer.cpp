#include "jit/specializer.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "datapath/project.hpp"
#include "ise/identify.hpp"
#include "support/stopwatch.hpp"
#include "woolcano/rewriter.hpp"

namespace jitise::jit {

namespace {

/// Hardware cycles of one FCM execution given its combinational latency.
std::uint32_t hw_cycles_from_ns(double latency_ns, const SpecializerConfig& cfg) {
  const double period_ns = 1e9 / cfg.woolcano.cpu_clock_hz;
  const auto transfer = static_cast<std::uint32_t>(
      latency_ns > 0 ? (latency_ns + period_ns - 1.0) / period_ns : 1);
  return cfg.woolcano.fcm_overhead_cycles + std::max(1u, transfer);
}

}  // namespace

SpecializationResult specialize(const ir::Module& module,
                                const vm::Profile& profile,
                                const SpecializerConfig& config,
                                BitstreamCache* cache) {
  SpecializationResult result;
  hwlib::CircuitDb db;
  support::Stopwatch search_timer;

  // ---- Phase 1: Candidate Search -----------------------------------------
  result.prune = ise::prune_blocks(module, profile, config.cpu, config.prune);

  struct Found {
    ise::ScoredCandidate scored;
    estimation::CandidateEstimate estimate;
  };
  std::vector<Found> found;
  std::vector<std::unique_ptr<dfg::BlockDfg>> graphs;
  std::vector<std::size_t> graph_of;  // found index -> graphs index

  for (const ise::PrunedBlock& blk : result.prune.blocks) {
    auto graph = std::make_unique<dfg::BlockDfg>(
        module.functions[blk.function], blk.block);
    const std::size_t graph_index = graphs.size();
    auto identified = config.identify == SpecializerConfig::Identify::UnionMiso
                          ? ise::find_union_misos(*graph)
                          : ise::find_max_misos(*graph);
    for (ise::Candidate& cand : identified) {
      cand.function = blk.function;
      const auto est = estimation::estimate_candidate(*graph, cand, db,
                                                      config.cpu, config.fcm);
      ise::ScoredCandidate scored;
      scored.signature = ise::candidate_signature(*graph, cand);
      scored.candidate = std::move(cand);
      scored.cycles_saved_total =
          est.saved_per_exec * static_cast<double>(blk.exec_count);
      scored.area_slices = est.area_slices;
      found.push_back(Found{std::move(scored), est});
      graph_of.push_back(graph_index);
    }
    graphs.push_back(std::move(graph));
  }
  result.candidates_found = found.size();

  std::vector<ise::ScoredCandidate> scored;
  scored.reserve(found.size());
  for (const Found& f : found) scored.push_back(f.scored);
  const ise::Selection selection = ise::select_greedy(scored, config.select);
  result.candidates_selected = selection.chosen.size();
  result.search_real_ms = search_timer.elapsed_ms();

  // ---- Phases 2+3: Netlist Generation + Instruction Implementation -------
  double saved_cycles_total = 0.0;
  for (std::size_t idx : selection.chosen) {
    const Found& f = found[idx];
    const dfg::BlockDfg& graph = *graphs[graph_of[idx]];
    ImplementedCandidate impl;
    impl.name = "ci_" + module.name + "_f" +
                std::to_string(f.scored.candidate.function) + "_b" +
                std::to_string(f.scored.candidate.block) + "_" +
                std::to_string(result.registry.size());
    impl.signature = f.scored.signature;
    impl.instructions = f.scored.candidate.size();
    impl.area_slices = f.scored.area_slices;

    woolcano::CustomInstruction ci;
    ci.candidate = f.scored.candidate;
    ci.signature = f.scored.signature;
    ci.program = woolcano::snapshot_program(graph, f.scored.candidate);
    ci.area_slices = f.scored.area_slices;

    if (!config.implement_hardware) {
      ci.hw_cycles = f.estimate.hw_cycles;
      ci.critical_path_ns = f.estimate.hw_latency_ns;
      impl.hw_cycles = ci.hw_cycles;
    } else {
      std::optional<CachedImplementation> hit;
      if (cache) hit = cache->lookup(impl.signature);
      if (hit) {
        impl.cache_hit = true;
        impl.cells = hit->cells;
        impl.bitstream_bytes = hit->bitstream.size_bytes();
        impl.hw_cycles = hit->hw_cycles;
        ci.hw_cycles = hit->hw_cycles;
        ci.critical_path_ns = hit->critical_path_ns;
        ci.bitstream_bytes = hit->bitstream.size_bytes();
        // All generation stages are skipped: zero modeled seconds.
      } else {
        const auto project =
            datapath::create_project(graph, f.scored.candidate, db, impl.name);
        cad::ImplementationResult hw;
        try {
          hw = cad::implement_candidate(project, config.flow);
        } catch (const fpga::CadError&) {
          // Oversized or unroutable candidate: the tool flow rejects it and
          // the specializer simply drops it (it stays in software).
          ++result.candidates_failed;
          continue;
        }
        impl.cells = hw.cells;
        impl.bitstream_bytes = hw.bitstream.size_bytes();
        impl.c2v_s = hw.c2v.modeled_seconds;
        impl.syn_s = hw.syn.modeled_seconds;
        impl.xst_s = hw.xst.modeled_seconds;
        impl.tra_s = hw.tra.modeled_seconds;
        impl.map_s = hw.map.modeled_seconds;
        impl.par_s = hw.par.modeled_seconds;
        impl.bitgen_s = hw.bitgen.modeled_seconds;
        // STA measures interconnect over the coarse cluster netlist; the
        // component database carries each core's true combinational latency.
        // The effective FCM latency is bounded below by both.
        ci.critical_path_ns =
            std::max(hw.timing.critical_path_ns, f.estimate.hw_latency_ns);
        ci.hw_cycles = std::max(hw_cycles_from_ns(ci.critical_path_ns, config),
                                f.estimate.hw_cycles);
        ci.bitstream_bytes = hw.bitstream.size_bytes();
        impl.hw_cycles = ci.hw_cycles;
        if (cache)
          cache->insert(impl.signature,
                        CachedImplementation{hw.bitstream, ci.hw_cycles,
                                             ci.critical_path_ns,
                                             impl.area_slices, hw.cells,
                                             impl.total_seconds()});
      }
    }

    // Cycle bookkeeping for the predicted speedup: actual hardware cycles
    // replace the estimate in the saving. A candidate whose implemented
    // latency turned out no better than software is *not activated* (the VM
    // keeps the software path), but its generation cost was already paid —
    // exactly the paper's accounting, where every implemented candidate
    // contributes to the overhead regardless of its eventual benefit.
    const double saved_per_exec =
        static_cast<double>(f.estimate.sw_cycles) -
        static_cast<double>(ci.hw_cycles);
    const bool activated = saved_per_exec > 0.0;
    if (activated) {
      for (const auto& b : result.prune.blocks)
        if (b.function == f.scored.candidate.function &&
            b.block == f.scored.candidate.block)
          saved_cycles_total +=
              saved_per_exec * static_cast<double>(b.exec_count);
    }

    result.sum_const_s += impl.const_seconds();
    result.sum_map_s += impl.map_s;
    result.sum_par_s += impl.par_s;
    result.sum_total_s += impl.total_seconds();
    if (activated) result.registry.add(std::move(ci));
    result.implemented.push_back(std::move(impl));
  }

  // ---- Adaptation phase ---------------------------------------------------
  result.rewritten = woolcano::rewrite_module(module, result.registry);
  const double base = static_cast<double>(profile.cpu_cycles);
  const double accel = base - saved_cycles_total;
  result.predicted_speedup = accel > 0.0 && base > 0.0 ? base / accel : 1.0;
  return result;
}

UpperBound asip_upper_bound(const ir::Module& module,
                            const vm::Profile& profile,
                            const vm::CostModel& cpu,
                            const estimation::FcmTiming& fcm) {
  UpperBound ub;
  ub.base_cycles = profile.cpu_cycles;
  hwlib::CircuitDb db;

  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    const ir::Function& fn = module.functions[f];
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      const std::uint64_t count = profile.block_counts[f][b];
      if (count == 0) continue;
      const dfg::BlockDfg graph(fn, b);
      if (graph.feasible_count() < 2) continue;
      for (ise::Candidate& cand : ise::find_max_misos(graph)) {
        cand.function = static_cast<ir::FuncId>(f);
        if (!cand.single_output()) continue;
        const auto est =
            estimation::estimate_candidate(graph, cand, db, cpu, fcm);
        if (est.saved_per_exec <= 0.0) continue;
        ++ub.candidates;
        ub.saved_cycles += est.saved_per_exec * static_cast<double>(count);
      }
    }
  }
  return ub;
}

}  // namespace jitise::jit
