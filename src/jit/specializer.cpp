// Entry points of the ASIP Specialization Process. The staged machinery
// lives in jit/pipeline.* — `specialize()` is a thin wrapper that builds a
// SpecializationPipeline, attaches the stderr TraceObserver when
// `trace_stages` is set, and runs it.
#include "jit/specializer.hpp"

#include <algorithm>
#include <cmath>

#include "ise/identify.hpp"
#include "jit/pipeline.hpp"

namespace jitise::jit {

unsigned SpecializerConfig::resolve_search_jobs(unsigned total_jobs,
                                                bool overlapping) const
    noexcept {
  if (search_jobs != 0) return search_jobs;
  if (total_jobs <= 1) return 1;
  return overlapping ? (total_jobs + 1) / 2 : total_jobs;
}

std::uint32_t fcm_hw_cycles(double latency_ns, const SpecializerConfig& cfg) {
  const double period_ns = 1e9 / cfg.woolcano.cpu_clock_hz;
  // A latency of e.g. 10.1 ns at a 5 ns period needs 3 full cycles; the
  // former integer-ceil-on-doubles idiom truncated this to 2.
  const auto transfer = static_cast<std::uint32_t>(
      latency_ns > 0 ? std::ceil(latency_ns / period_ns) : 1.0);
  return cfg.woolcano.fcm_overhead_cycles + std::max(1u, transfer);
}

SpecializationResult specialize(const ir::Module& module,
                                const vm::Profile& profile,
                                const SpecializerConfig& config,
                                BitstreamCache* cache,
                                estimation::EstimateCache* estimates) {
  SpecializationPipeline pipeline(config, cache, estimates);
  TraceObserver trace;
  if (config.trace_stages) pipeline.add_observer(&trace);
  return pipeline.run(module, profile);
}

UpperBound asip_upper_bound(const ir::Module& module,
                            const vm::Profile& profile,
                            const vm::CostModel& cpu,
                            const estimation::FcmTiming& fcm) {
  UpperBound ub;
  ub.base_cycles = profile.cpu_cycles;
  hwlib::CircuitDb db;

  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    const ir::Function& fn = module.functions[f];
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      const std::uint64_t count = profile.block_counts[f][b];
      if (count == 0) continue;
      const dfg::BlockDfg graph(fn, b);
      if (graph.feasible_count() < 2) continue;
      for (ise::Candidate& cand : ise::find_max_misos(graph)) {
        cand.function = static_cast<ir::FuncId>(f);
        if (!cand.single_output()) continue;
        const auto est =
            estimation::estimate_candidate(graph, cand, db, cpu, fcm);
        if (est.saved_per_exec <= 0.0) continue;
        ++ub.candidates;
        ub.saved_cycles += est.saved_per_exec * static_cast<double>(count);
      }
    }
  }
  return ub;
}

}  // namespace jitise::jit
