#include "jit/specializer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_set>

#include "datapath/project.hpp"
#include "ise/identify.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"
#include "woolcano/rewriter.hpp"

namespace jitise::jit {

std::uint32_t fcm_hw_cycles(double latency_ns, const SpecializerConfig& cfg) {
  const double period_ns = 1e9 / cfg.woolcano.cpu_clock_hz;
  // A latency of e.g. 10.1 ns at a 5 ns period needs 3 full cycles; the
  // former integer-ceil-on-doubles idiom truncated this to 2.
  const auto transfer = static_cast<std::uint32_t>(
      latency_ns > 0 ? std::ceil(latency_ns / period_ns) : 1.0);
  return cfg.woolcano.fcm_overhead_cycles + std::max(1u, transfer);
}

namespace {

/// Outcome of one candidate's CAD run on a pool worker. Slots are pre-sized
/// and indexed by the candidate's position in the selection, so the serial
/// tail consumes them in exactly the jobs=1 order.
struct PreGenerated {
  bool dispatched = false;  // a worker ran the CAD flow for this position
  bool failed = false;      // ...and the tool flow rejected it (fit/route)
  cad::ImplementationResult hw;
};

void trace_stage_line(const std::string& name,
                      const cad::ImplementationResult& hw) {
  std::fprintf(stderr,
               "[asip-sp] %s: syn %.3f xst %.3f tra %.3f map %.3f par %.3f "
               "bitgen %.3f real-ms (modeled %.1f s) thread %zu\n",
               name.c_str(), hw.syn.real_ms, hw.xst.real_ms, hw.tra.real_ms,
               hw.map.real_ms, hw.par.real_ms, hw.bitgen.real_ms,
               hw.total_modeled_seconds(),
               std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

SpecializationResult specialize(const ir::Module& module,
                                const vm::Profile& profile,
                                const SpecializerConfig& config,
                                BitstreamCache* cache) {
  SpecializationResult result;
  hwlib::CircuitDb db;
  support::Stopwatch search_timer;

  // ---- Phase 1: Candidate Search -----------------------------------------
  result.prune = ise::prune_blocks(module, profile, config.cpu, config.prune);

  struct Found {
    ise::ScoredCandidate scored;
    estimation::CandidateEstimate estimate;
  };
  std::vector<Found> found;
  std::vector<std::unique_ptr<dfg::BlockDfg>> graphs;
  std::vector<std::size_t> graph_of;  // found index -> graphs index

  for (const ise::PrunedBlock& blk : result.prune.blocks) {
    auto graph = std::make_unique<dfg::BlockDfg>(
        module.functions[blk.function], blk.block);
    const std::size_t graph_index = graphs.size();
    auto identified = config.identify == SpecializerConfig::Identify::UnionMiso
                          ? ise::find_union_misos(*graph)
                          : ise::find_max_misos(*graph);
    for (ise::Candidate& cand : identified) {
      cand.function = blk.function;
      const auto est = estimation::estimate_candidate(*graph, cand, db,
                                                      config.cpu, config.fcm);
      ise::ScoredCandidate scored;
      scored.signature = ise::candidate_signature(*graph, cand);
      scored.candidate = std::move(cand);
      scored.cycles_saved_total =
          est.saved_per_exec * static_cast<double>(blk.exec_count);
      scored.area_slices = est.area_slices;
      found.push_back(Found{std::move(scored), est});
      graph_of.push_back(graph_index);
    }
    graphs.push_back(std::move(graph));
  }
  result.candidates_found = found.size();

  std::vector<ise::ScoredCandidate> scored;
  scored.reserve(found.size());
  for (const Found& f : found) scored.push_back(f.scored);
  const ise::Selection selection = ise::select_greedy(scored, config.select);
  result.candidates_selected = selection.chosen.size();
  result.search_real_ms = search_timer.elapsed_ms();

  // ---- Phases 2+3: Netlist Generation + Instruction Implementation -------
  //
  // Each selected candidate's datapath -> syn -> map -> PAR -> bitgen chain
  // is independent, so the expensive CAD work fans out over a thread pool;
  // everything order-sensitive (cache population, cycle accounting, registry
  // insertion, `implemented` order) stays in the serial tail below, which
  // makes jobs=N output bit-identical to jobs=1.
  std::vector<std::string> names(selection.chosen.size());
  for (std::size_t k = 0; k < selection.chosen.size(); ++k) {
    const ise::Candidate& cand = found[selection.chosen[k]].scored.candidate;
    names[k] = "ci_" + module.name + "_f" + std::to_string(cand.function) +
               "_b" + std::to_string(cand.block) + "_" + std::to_string(k);
  }

  const unsigned jobs =
      config.jobs != 0 ? config.jobs : support::ThreadPool::default_jobs();
  std::vector<PreGenerated> pregen(selection.chosen.size());
  if (config.implement_hardware && jobs > 1 && selection.chosen.size() > 1) {
    support::ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, selection.chosen.size())));
    // With a cache, a signature already present — or generated by an earlier
    // position of this batch — resolves as a cache hit in the tail, exactly
    // as in the serial run; only first occurrences are dispatched.
    std::unordered_set<std::uint64_t> scheduled;
    for (std::size_t k = 0; k < selection.chosen.size(); ++k) {
      const std::uint64_t sig = found[selection.chosen[k]].scored.signature;
      if (cache && (cache->contains(sig) || scheduled.count(sig) != 0))
        continue;
      if (cache) scheduled.insert(sig);
      pregen[k].dispatched = true;
      pool.submit([&, k] {
        const std::size_t idx = selection.chosen[k];
        const Found& f = found[idx];
        const auto project = datapath::create_project(
            *graphs[graph_of[idx]], f.scored.candidate, db, names[k]);
        try {
          pregen[k].hw = cad::implement_candidate(project, config.flow);
        } catch (const fpga::CadError&) {
          pregen[k].failed = true;
          return;
        }
        if (config.trace_stages) trace_stage_line(names[k], pregen[k].hw);
      });
    }
    pool.wait_all();
  }

  double saved_cycles_total = 0.0;
  for (std::size_t k = 0; k < selection.chosen.size(); ++k) {
    const std::size_t idx = selection.chosen[k];
    const Found& f = found[idx];
    const dfg::BlockDfg& graph = *graphs[graph_of[idx]];
    ImplementedCandidate impl;
    impl.name = names[k];
    impl.signature = f.scored.signature;
    impl.instructions = f.scored.candidate.size();
    impl.area_slices = f.scored.area_slices;

    woolcano::CustomInstruction ci;
    ci.candidate = f.scored.candidate;
    ci.signature = f.scored.signature;
    ci.program = woolcano::snapshot_program(graph, f.scored.candidate);
    ci.area_slices = f.scored.area_slices;

    if (!config.implement_hardware) {
      ci.hw_cycles = f.estimate.hw_cycles;
      ci.critical_path_ns = f.estimate.hw_latency_ns;
      impl.hw_cycles = ci.hw_cycles;
    } else {
      std::optional<CachedImplementation> hit;
      if (cache) hit = cache->lookup(impl.signature);
      if (hit) {
        impl.cache_hit = true;
        impl.cells = hit->cells;
        impl.bitstream_bytes = hit->bitstream.size_bytes();
        impl.hw_cycles = hit->hw_cycles;
        ci.hw_cycles = hit->hw_cycles;
        ci.critical_path_ns = hit->critical_path_ns;
        ci.bitstream_bytes = hit->bitstream.size_bytes();
        // All generation stages are skipped: zero modeled seconds.
      } else {
        cad::ImplementationResult hw;
        if (pregen[k].dispatched) {
          if (pregen[k].failed) {
            // Oversized or unroutable candidate: the tool flow rejects it
            // and the specializer simply drops it (it stays in software).
            ++result.candidates_failed;
            continue;
          }
          hw = std::move(pregen[k].hw);
        } else {
          // Serial path: jobs=1, or the dispatch-time cache entry this
          // position relied on was evicted before the tail reached it.
          const auto project = datapath::create_project(
              graph, f.scored.candidate, db, impl.name);
          try {
            hw = cad::implement_candidate(project, config.flow);
          } catch (const fpga::CadError&) {
            ++result.candidates_failed;
            continue;
          }
          if (config.trace_stages) trace_stage_line(impl.name, hw);
        }
        impl.cells = hw.cells;
        impl.bitstream_bytes = hw.bitstream.size_bytes();
        impl.c2v_s = hw.c2v.modeled_seconds;
        impl.syn_s = hw.syn.modeled_seconds;
        impl.xst_s = hw.xst.modeled_seconds;
        impl.tra_s = hw.tra.modeled_seconds;
        impl.map_s = hw.map.modeled_seconds;
        impl.par_s = hw.par.modeled_seconds;
        impl.bitgen_s = hw.bitgen.modeled_seconds;
        // STA measures interconnect over the coarse cluster netlist; the
        // component database carries each core's true combinational latency.
        // The effective FCM latency is bounded below by both.
        ci.critical_path_ns =
            std::max(hw.timing.critical_path_ns, f.estimate.hw_latency_ns);
        ci.hw_cycles = std::max(fcm_hw_cycles(ci.critical_path_ns, config),
                                f.estimate.hw_cycles);
        ci.bitstream_bytes = hw.bitstream.size_bytes();
        impl.hw_cycles = ci.hw_cycles;
        if (cache)
          cache->insert(impl.signature,
                        CachedImplementation{hw.bitstream, ci.hw_cycles,
                                             ci.critical_path_ns,
                                             impl.area_slices, hw.cells,
                                             impl.total_seconds()});
      }
    }

    // Cycle bookkeeping for the predicted speedup: actual hardware cycles
    // replace the estimate in the saving. A candidate whose implemented
    // latency turned out no better than software is *not activated* (the VM
    // keeps the software path), but its generation cost was already paid —
    // exactly the paper's accounting, where every implemented candidate
    // contributes to the overhead regardless of its eventual benefit.
    const double saved_per_exec =
        static_cast<double>(f.estimate.sw_cycles) -
        static_cast<double>(ci.hw_cycles);
    const bool activated = saved_per_exec > 0.0;
    if (activated) {
      for (const auto& b : result.prune.blocks)
        if (b.function == f.scored.candidate.function &&
            b.block == f.scored.candidate.block)
          saved_cycles_total +=
              saved_per_exec * static_cast<double>(b.exec_count);
    }

    result.sum_const_s += impl.const_seconds();
    result.sum_map_s += impl.map_s;
    result.sum_par_s += impl.par_s;
    result.sum_total_s += impl.total_seconds();
    if (activated) result.registry.add(std::move(ci));
    result.implemented.push_back(std::move(impl));
  }

  // ---- Adaptation phase ---------------------------------------------------
  result.rewritten = woolcano::rewrite_module(module, result.registry);
  const double base = static_cast<double>(profile.cpu_cycles);
  const double accel = base - saved_cycles_total;
  result.predicted_speedup = accel > 0.0 && base > 0.0 ? base / accel : 1.0;
  return result;
}

UpperBound asip_upper_bound(const ir::Module& module,
                            const vm::Profile& profile,
                            const vm::CostModel& cpu,
                            const estimation::FcmTiming& fcm) {
  UpperBound ub;
  ub.base_cycles = profile.cpu_cycles;
  hwlib::CircuitDb db;

  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    const ir::Function& fn = module.functions[f];
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      const std::uint64_t count = profile.block_counts[f][b];
      if (count == 0) continue;
      const dfg::BlockDfg graph(fn, b);
      if (graph.feasible_count() < 2) continue;
      for (ise::Candidate& cand : ise::find_max_misos(graph)) {
        cand.function = static_cast<ir::FuncId>(f);
        if (!cand.single_output()) continue;
        const auto est =
            estimation::estimate_candidate(graph, cand, db, cpu, fcm);
        if (est.saved_per_exec <= 0.0) continue;
        ++ub.candidates;
        ub.saved_cycles += est.saved_per_exec * static_cast<double>(count);
      }
    }
  }
  return ub;
}

}  // namespace jitise::jit
