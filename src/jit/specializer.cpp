// Entry points of the ASIP Specialization Process. The staged machinery
// lives in jit/pipeline.* — `specialize()` is a thin wrapper that builds a
// SpecializationPipeline, attaches the stderr TraceObserver when
// `trace_stages` is set, and runs it.
#include "jit/specializer.hpp"

#include <algorithm>
#include <cmath>

#include "ise/identify.hpp"
#include "jit/pipeline.hpp"
#include "support/rng.hpp"

namespace jitise::jit {

std::uint32_t fcm_hw_cycles(double latency_ns, const SpecializerConfig& cfg) {
  const double period_ns = 1e9 / cfg.woolcano.cpu_clock_hz;
  // A latency of e.g. 10.1 ns at a 5 ns period needs 3 full cycles; the
  // former integer-ceil-on-doubles idiom truncated this to 2.
  const auto transfer = static_cast<std::uint32_t>(
      latency_ns > 0 ? std::ceil(latency_ns / period_ns) : 1.0);
  return cfg.woolcano.fcm_overhead_cycles + std::max(1u, transfer);
}

std::uint64_t request_signature(const ir::Module& module,
                                const vm::Profile& profile) {
  support::Fnv1a h;
  const auto str = [&h](const std::string& s) {
    h.update_value<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    h.update(s.data(), s.size());
  };
  str(module.name);
  h.update_value<std::uint32_t>(
      static_cast<std::uint32_t>(module.functions.size()));
  for (const ir::Function& fn : module.functions) {
    str(fn.name);
    h.update_value<std::uint8_t>(static_cast<std::uint8_t>(fn.ret_type));
    h.update_value<std::uint32_t>(static_cast<std::uint32_t>(fn.params.size()));
    for (ir::Type t : fn.params)
      h.update_value<std::uint8_t>(static_cast<std::uint8_t>(t));
    h.update_value<std::uint32_t>(static_cast<std::uint32_t>(fn.values.size()));
    for (const ir::Instruction& inst : fn.values) {
      h.update_value<std::uint8_t>(static_cast<std::uint8_t>(inst.op));
      h.update_value<std::uint8_t>(static_cast<std::uint8_t>(inst.type));
      h.update_value<std::int64_t>(inst.imm);
      h.update_value<double>(inst.fimm);
      h.update_value<std::uint32_t>(inst.aux);
      h.update_value<std::uint32_t>(inst.aux2);
      h.update_value<std::uint32_t>(
          static_cast<std::uint32_t>(inst.operands.size()));
      for (ir::ValueId o : inst.operands) h.update_value<std::uint32_t>(o);
      for (ir::BlockId b : inst.phi_blocks) h.update_value<std::uint32_t>(b);
    }
    h.update_value<std::uint32_t>(static_cast<std::uint32_t>(fn.blocks.size()));
    for (const ir::BasicBlock& block : fn.blocks) {
      str(block.name);
      h.update_value<std::uint32_t>(
          static_cast<std::uint32_t>(block.instrs.size()));
      for (ir::ValueId v : block.instrs) h.update_value<std::uint32_t>(v);
    }
  }
  h.update_value<std::uint32_t>(
      static_cast<std::uint32_t>(module.globals.size()));
  for (const ir::Global& g : module.globals) {
    str(g.name);
    h.update_value<std::uint32_t>(g.size_bytes);
    h.update_value<std::uint32_t>(static_cast<std::uint32_t>(g.init.size()));
    if (!g.init.empty()) h.update(g.init.data(), g.init.size());
  }
  h.update_value<std::uint64_t>(profile.dyn_instructions);
  h.update_value<std::uint64_t>(profile.cpu_cycles);
  h.update_value<std::uint32_t>(
      static_cast<std::uint32_t>(profile.block_counts.size()));
  for (const auto& counts : profile.block_counts) {
    h.update_value<std::uint32_t>(static_cast<std::uint32_t>(counts.size()));
    for (std::uint64_t c : counts) h.update_value<std::uint64_t>(c);
  }
  for (std::uint64_t c : profile.opcode_counts)
    h.update_value<std::uint64_t>(c);
  return h.digest();
}

SpecializationResult specialize(const ir::Module& module,
                                const vm::Profile& profile,
                                const SpecializerConfig& config,
                                BitstreamCache* cache,
                                estimation::EstimateCache* estimates) {
  SpecializationPipeline pipeline(config, cache, estimates);
  TraceObserver trace;
  if (config.trace_stages) pipeline.add_observer(&trace);
  return pipeline.run(module, profile);
}

UpperBound asip_upper_bound(const ir::Module& module,
                            const vm::Profile& profile,
                            const vm::CostModel& cpu,
                            const estimation::FcmTiming& fcm) {
  UpperBound ub;
  ub.base_cycles = profile.cpu_cycles;
  hwlib::CircuitDb db;

  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    const ir::Function& fn = module.functions[f];
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      const std::uint64_t count = profile.block_counts[f][b];
      if (count == 0) continue;
      const dfg::BlockDfg graph(fn, b);
      if (graph.feasible_count() < 2) continue;
      for (ise::Candidate& cand : ise::find_max_misos(graph)) {
        cand.function = static_cast<ir::FuncId>(f);
        if (!cand.single_output()) continue;
        const auto est =
            estimation::estimate_candidate(graph, cand, db, cpu, fcm);
        if (est.saved_per_exec <= 0.0) continue;
        ++ub.candidates;
        ub.saved_cycles += est.saved_per_exec * static_cast<double>(count);
      }
    }
  }
  return ub;
}

}  // namespace jitise::jit
