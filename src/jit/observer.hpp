// Observer hook layer for the SpecializationPipeline.
//
// The pipeline emits typed events — phase windows with measured timings,
// per-candidate CAD progress, cache hits — instead of ad-hoc stderr prints.
// Observers may be invoked from thread-pool workers (the per-candidate
// events), so implementations must be internally synchronized; TraceObserver
// below is the mutex-guarded stderr sink that `--trace` installs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "cad/flow.hpp"
#include "ise/isegen.hpp"

namespace jitise::jit {

/// Pipeline-global phase windows. Netlist Generation is a per-candidate
/// stage fused with Instruction Implementation on the worker that owns the
/// candidate, so it has no global window of its own: `on_candidate_netlist`
/// events fire inside the Implementation window instead.
enum class PipelinePhase { CandidateSearch, Implementation, Adaptation };

[[nodiscard]] const char* phase_name(PipelinePhase phase) noexcept;

class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;

  // -- Phase windows (emitted from the pipeline thread). With phase overlap
  //    enabled, Implementation may enter before CandidateSearch exits.
  virtual void on_phase_enter(PipelinePhase /*phase*/) {}
  virtual void on_phase_exit(PipelinePhase /*phase*/, double /*real_ms*/) {}

  // -- Candidate search progress (pipeline thread, pruned-block order —
  //    the parallel search's serial reducer releases blocks in sequence, so
  //    these stay deterministic at any worker count).
  //    `on_block_searched` reports one block's DFG + identify + estimate
  //    wall time as measured on whichever worker searched it.
  virtual void on_block_searched(std::size_t /*block_index*/,
                                 std::size_t /*candidates*/,
                                 double /*real_ms*/) {}
  virtual void on_block_scored(std::size_t /*block_index*/,
                               std::size_t /*candidates_so_far*/,
                               std::size_t /*provisionally_selected*/) {}

  // -- Anytime selection refinement (pipeline thread, once per run, only
  //    when SpecializerConfig::selector == Selector::Isegen): iteration/
  //    acceptance counters and the saving delta over the greedy seed.
  virtual void on_selection_refined(const ise::IsegenStats& /*stats*/) {}

  // -- Per-candidate CAD events. Dispatch fires on the pipeline thread;
  //    netlist/implemented/failed fire on whichever worker runs the CAD
  //    chain (or the pipeline thread at jobs=1). `speculative` marks work
  //    started from a provisional selection before search finished.
  virtual void on_candidate_dispatched(std::uint64_t /*signature*/,
                                       bool /*speculative*/) {}
  virtual void on_candidate_netlist(const std::string& /*name*/,
                                    std::uint64_t /*signature*/) {}
  virtual void on_candidate_implemented(const std::string& /*name*/,
                                        std::uint64_t /*signature*/,
                                        const cad::ImplementationResult&) {}
  virtual void on_candidate_failed(const std::string& /*name*/,
                                   std::uint64_t /*signature*/) {}

  // -- Adaptation tail (pipeline thread, selection order).
  virtual void on_cache_hit(const std::string& /*name*/,
                            std::uint64_t /*signature*/) {}

  // -- Cache persistence (pipeline thread, after the adaptation tail): the
  //    journal attached to the bitstream cache flushed `flushed_records`
  //    buffered records to disk; `compacted` reports whether the
  //    size/garbage-ratio trigger also rewrote the journal from live state.
  virtual void on_cache_journal_sync(std::size_t /*flushed_records*/,
                                     bool /*compacted*/) {}
};

/// Fans events out to a list of observers (none owned). The pipeline uses
/// one internally; it is also handy for composing observers in tests.
class ObserverList final : public PipelineObserver {
 public:
  void add(PipelineObserver* observer) {
    if (observer) observers_.push_back(observer);
  }
  [[nodiscard]] bool empty() const noexcept { return observers_.empty(); }

  void on_phase_enter(PipelinePhase phase) override {
    for (auto* o : observers_) o->on_phase_enter(phase);
  }
  void on_phase_exit(PipelinePhase phase, double real_ms) override {
    for (auto* o : observers_) o->on_phase_exit(phase, real_ms);
  }
  void on_block_searched(std::size_t block, std::size_t candidates,
                         double real_ms) override {
    for (auto* o : observers_) o->on_block_searched(block, candidates, real_ms);
  }
  void on_block_scored(std::size_t block, std::size_t found,
                       std::size_t selected) override {
    for (auto* o : observers_) o->on_block_scored(block, found, selected);
  }
  void on_selection_refined(const ise::IsegenStats& stats) override {
    for (auto* o : observers_) o->on_selection_refined(stats);
  }
  void on_candidate_dispatched(std::uint64_t sig, bool speculative) override {
    for (auto* o : observers_) o->on_candidate_dispatched(sig, speculative);
  }
  void on_candidate_netlist(const std::string& name,
                            std::uint64_t sig) override {
    for (auto* o : observers_) o->on_candidate_netlist(name, sig);
  }
  void on_candidate_implemented(const std::string& name, std::uint64_t sig,
                                const cad::ImplementationResult& hw) override {
    for (auto* o : observers_) o->on_candidate_implemented(name, sig, hw);
  }
  void on_candidate_failed(const std::string& name,
                           std::uint64_t sig) override {
    for (auto* o : observers_) o->on_candidate_failed(name, sig);
  }
  void on_cache_hit(const std::string& name, std::uint64_t sig) override {
    for (auto* o : observers_) o->on_cache_hit(name, sig);
  }
  void on_cache_journal_sync(std::size_t flushed, bool compacted) override {
    for (auto* o : observers_) o->on_cache_journal_sync(flushed, compacted);
  }

 private:
  std::vector<PipelineObserver*> observers_;
};

/// The default `--trace` sink: one line per event of interest, written to a
/// FILE* under an internal mutex so lines from concurrent CAD workers never
/// interleave mid-line.
class TraceObserver final : public PipelineObserver {
 public:
  explicit TraceObserver(std::FILE* sink = stderr) : sink_(sink) {}

  void on_phase_exit(PipelinePhase phase, double real_ms) override;
  void on_block_searched(std::size_t block, std::size_t candidates,
                         double real_ms) override;
  void on_selection_refined(const ise::IsegenStats& stats) override;
  void on_candidate_implemented(const std::string& name, std::uint64_t sig,
                                const cad::ImplementationResult& hw) override;
  void on_candidate_failed(const std::string& name,
                           std::uint64_t sig) override;
  void on_cache_journal_sync(std::size_t flushed, bool compacted) override;

 private:
  std::mutex mu_;
  std::FILE* sink_;
};

}  // namespace jitise::jit
