#include "jit/breakeven.hpp"

#include <cmath>

namespace jitise::jit {

std::uint64_t executions_to_break_even(double overhead_seconds,
                                       double saved_per_exec) {
  return static_cast<std::uint64_t>(
      std::ceil(overhead_seconds / saved_per_exec));
}

double break_even_seconds(std::span<const BlockTerm> blocks,
                          double overhead_seconds) {
  double const_time = 0.0, const_saving = 0.0;
  double live_time = 0.0, live_saving_rate = 0.0;
  for (const BlockTerm& term : blocks) {
    const double saving_frac =
        term.speedup > 1.0 ? 1.0 - 1.0 / term.speedup : 0.0;
    switch (term.cls) {
      case vm::CoverageClass::Dead:
        break;
      case vm::CoverageClass::Const:
        const_time += term.time_seconds;
        const_saving += term.time_seconds * saving_frac;
        break;
      case vm::CoverageClass::Live:
        live_time += term.time_seconds;
        live_saving_rate += term.time_seconds * saving_frac;
        break;
    }
  }

  if (overhead_seconds <= const_saving) {
    // Compensated already within the first execution's const portion.
    return const_time;
  }
  const double remaining = overhead_seconds - const_saving;
  if (live_saving_rate <= 0.0) return kNeverBreaksEven;
  const double scale = remaining / live_saving_rate;
  // x >= 1 by definition (the first execution's live part runs anyway).
  const double x = scale < 1.0 ? 1.0 : scale;
  return const_time + x * live_time;
}

}  // namespace jitise::jit
