#include "jit/cache.hpp"

#include <algorithm>

namespace jitise::jit {

std::optional<CachedImplementation> BitstreamCache::lookup(
    std::uint64_t signature) {
  Stripe& s = stripe_of(signature);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(signature);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  it->second->stamp = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->entry;
}

void BitstreamCache::insert(std::uint64_t signature,
                            CachedImplementation entry) {
  const std::size_t size = entry.bitstream.size_bytes();
  {
    Stripe& s = stripe_of(signature);
    std::lock_guard<std::mutex> lock(s.mu);
    const std::uint64_t stamp =
        clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (const auto it = s.map.find(signature); it != s.map.end()) {
      // Replacement refreshes recency but never evicts (same contract as
      // the original single-mutex cache).
      const std::size_t old = it->second->entry.bitstream.size_bytes();
      it->second->entry = std::move(entry);
      it->second->stamp = stamp;
      s.bytes += size - old;
      bytes_.fetch_add(size, std::memory_order_relaxed);
      bytes_.fetch_sub(old, std::memory_order_relaxed);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      if (journal_) journal_->record_insert(signature, it->second->entry);
      return;
    }
    s.lru.push_front(Node{signature, std::move(entry), stamp});
    s.map[signature] = s.lru.begin();
    s.bytes += size;
    bytes_.fetch_add(size, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    if (journal_) journal_->record_insert(signature, s.lru.front().entry);
  }
  if (capacity_ != 0 && bytes_.load(std::memory_order_relaxed) > capacity_)
    evict_to_capacity();
}

void BitstreamCache::evict_to_capacity() {
  // All-stripe lock in index order (the only multi-stripe lock sites are
  // this, snapshot() and clear(), all using the same order — deadlock-free).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (Stripe& s : stripes_) locks.emplace_back(s.mu);

  while (bytes_.load(std::memory_order_relaxed) > capacity_ &&
         entries_.load(std::memory_order_relaxed) > 1) {
    // Each stripe's list is stamp-descending, so its back is its oldest;
    // the global victim is the minimum over stripe backs.
    Stripe* victim_stripe = nullptr;
    std::uint64_t oldest = 0;
    for (Stripe& s : stripes_) {
      if (s.lru.empty()) continue;
      const std::uint64_t stamp = s.lru.back().stamp;
      if (victim_stripe == nullptr || stamp < oldest) {
        victim_stripe = &s;
        oldest = stamp;
      }
    }
    if (victim_stripe == nullptr) break;
    const Node& victim = victim_stripe->lru.back();
    if (journal_) journal_->record_evict(victim.signature);
    const std::size_t size = victim.entry.bitstream.size_bytes();
    victim_stripe->bytes -= size;
    bytes_.fetch_sub(size, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    victim_stripe->map.erase(victim.signature);
    victim_stripe->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool BitstreamCache::contains(std::uint64_t signature) const {
  const Stripe& s = stripe_of(signature);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.map.count(signature) != 0;
}

bool BitstreamCache::erase(std::uint64_t signature) {
  Stripe& s = stripe_of(signature);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(signature);
  if (it == s.map.end()) return false;
  const std::size_t size = it->second->entry.bitstream.size_bytes();
  s.bytes -= size;
  bytes_.fetch_sub(size, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  s.lru.erase(it->second);
  s.map.erase(it);
  return true;
}

bool BitstreamCache::evict(std::uint64_t signature) {
  Stripe& s = stripe_of(signature);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(signature);
  if (it == s.map.end()) return false;
  if (journal_) journal_->record_evict(signature);
  const std::size_t size = it->second->entry.bitstream.size_bytes();
  s.bytes -= size;
  bytes_.fetch_sub(size, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  s.lru.erase(it->second);
  s.map.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BitstreamCache::clear() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (Stripe& s : stripes_) locks.emplace_back(s.mu);
  for (Stripe& s : stripes_) {
    s.lru.clear();
    s.map.clear();
    s.bytes = 0;
  }
  bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::uint64_t, CachedImplementation>>
BitstreamCache::snapshot() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (const Stripe& s : stripes_) locks.emplace_back(s.mu);

  std::vector<const Node*> nodes;
  nodes.reserve(entries_.load(std::memory_order_relaxed));
  for (const Stripe& s : stripes_)
    for (const Node& node : s.lru) nodes.push_back(&node);
  std::sort(nodes.begin(), nodes.end(), [](const Node* a, const Node* b) {
    return a->stamp > b->stamp;  // most recently used first
  });

  std::vector<std::pair<std::uint64_t, CachedImplementation>> out;
  out.reserve(nodes.size());
  for (const Node* node : nodes) out.emplace_back(node->signature, node->entry);
  return out;
}

}  // namespace jitise::jit
