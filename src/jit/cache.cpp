#include "jit/cache.hpp"

namespace jitise::jit {

std::optional<CachedImplementation> BitstreamCache::lookup(
    std::uint64_t signature) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(signature);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->entry;
}

void BitstreamCache::insert(std::uint64_t signature,
                            CachedImplementation entry) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t size = entry.bitstream.size_bytes();
  if (const auto it = map_.find(signature); it != map_.end()) {
    bytes_ -= it->second->entry.bitstream.size_bytes();
    it->second->entry = std::move(entry);
    bytes_ += size;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{signature, std::move(entry)});
  map_[signature] = lru_.begin();
  bytes_ += size;
  if (capacity_ == 0) return;
  while (bytes_ > capacity_ && lru_.size() > 1) {
    const Node& victim = lru_.back();
    bytes_ -= victim.entry.bitstream.size_bytes();
    map_.erase(victim.signature);
    lru_.pop_back();
    ++evictions_;
  }
}

void BitstreamCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

}  // namespace jitise::jit
