#include "jit/cache_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include "fpga/bitgen.hpp"

namespace jitise::jit {

namespace {

constexpr std::uint32_t kMagic = 0x4A495443;        // "JITC" (file header)
constexpr std::uint32_t kRecordMagic = 0x4A524E4C;  // "JRNL" (record frame)
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;
constexpr std::uint32_t kKindInsert = 1;
constexpr std::uint32_t kKindEvict = 2;
// A record body is a fixed preamble plus one entry (bitstream bounded at
// 1 GiB, part string at 1 MiB) — anything larger is frame damage.
constexpr std::uint64_t kMaxRecordBytes = (1ull << 30) + (1ull << 21);
constexpr std::size_t kAppendChunk = 32;  // journal append granularity

testing_hooks::CacheIoWriteHook g_write_hook;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// All physical cache-file writes funnel through here so the fault-injection
/// hook can model a process killed after M writes: the hook throws *before*
/// the write happens, leaving a prefix of the intended bytes on disk.
void checked_write(std::FILE* f, std::uint64_t& offset, const void* data,
                   std::size_t n) {
  if (g_write_hook) g_write_hook(offset, n);
  if (std::fwrite(data, 1, n, f) != n)
    throw std::runtime_error("cache file: write failed");
  offset += n;
}

/// FILE-backed field writer (tracks the offset for the fault hook).
struct Writer {
  std::FILE* f;
  std::uint64_t offset = 0;
  void bytes(const void* data, std::size_t n) {
    checked_write(f, offset, data, n);
  }
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(v));
  }
  void str(const std::string& s) {
    pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
};

// -- In-memory encoding (journal record bodies).

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}
template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_bytes(out, &v, sizeof(v));
}
void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  append_bytes(out, s.data(), s.size());
}

/// Entry serialization shared by the v1 body and v2 record bodies (identical
/// field order, so the formats differ only in framing).
void encode_entry(std::vector<std::uint8_t>& out,
                  const CachedImplementation& entry) {
  append_pod(out, entry.hw_cycles);
  append_pod(out, entry.critical_path_ns);
  append_pod(out, entry.area_slices);
  append_pod<std::uint64_t>(out, entry.cells);
  append_pod(out, entry.generation_seconds);
  const fpga::Bitstream& bs = entry.bitstream;
  append_string(out, bs.part);
  append_pod(out, bs.region_width);
  append_pod(out, bs.region_height);
  append_pod(out, bs.frame_count);
  append_pod(out, bs.crc32);
  append_pod<std::uint64_t>(out, bs.bytes.size());
  append_bytes(out, bs.bytes.data(), bs.bytes.size());
}

/// One framed journal record: JRNL magic, body length, CRC-32 over the
/// body, body = (kind, stamp, signature[, entry]).
std::vector<std::uint8_t> make_record(std::uint32_t kind, std::uint64_t stamp,
                                      std::uint64_t signature,
                                      const CachedImplementation* entry) {
  std::vector<std::uint8_t> body;
  append_pod(body, kind);
  append_pod(body, stamp);
  append_pod(body, signature);
  if (entry != nullptr) encode_entry(body, *entry);

  std::vector<std::uint8_t> frame;
  frame.reserve(body.size() + 12);
  append_pod(frame, kRecordMagic);
  append_pod<std::uint32_t>(frame, static_cast<std::uint32_t>(body.size()));
  append_pod(frame, fpga::crc32(body.data(), body.size()));
  append_bytes(frame, body.data(), body.size());
  return frame;
}

// -- Decoding.

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t at = 0;

  [[nodiscard]] std::size_t remaining() const noexcept { return size - at; }
  bool read(void* out, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data + at, n);
    at += n;
    return true;
  }
  template <typename T>
  bool pod(T& out) {
    return read(&out, sizeof(out));
  }
};

/// Decodes one entry; false on any structural damage. Also verifies the
/// bitstream's own CRC word (defense in depth under the record CRC).
bool decode_entry(Cursor& c, CachedImplementation& entry) {
  std::uint64_t cells = 0, nbytes = 0;
  std::uint32_t part_len = 0;
  if (!c.pod(entry.hw_cycles) || !c.pod(entry.critical_path_ns) ||
      !c.pod(entry.area_slices) || !c.pod(cells) ||
      !c.pod(entry.generation_seconds) || !c.pod(part_len))
    return false;
  entry.cells = static_cast<std::size_t>(cells);
  if (part_len > (1u << 20) || c.remaining() < part_len) return false;
  entry.bitstream.part.assign(
      reinterpret_cast<const char*>(c.data + c.at), part_len);
  c.at += part_len;
  if (!c.pod(entry.bitstream.region_width) ||
      !c.pod(entry.bitstream.region_height) ||
      !c.pod(entry.bitstream.frame_count) || !c.pod(entry.bitstream.crc32) ||
      !c.pod(nbytes))
    return false;
  if (nbytes > (1ull << 30) || c.remaining() < nbytes) return false;
  entry.bitstream.bytes.resize(static_cast<std::size_t>(nbytes));
  c.read(entry.bitstream.bytes.data(), entry.bitstream.bytes.size());
  if (!entry.bitstream.bytes.empty()) {
    const std::size_t body = entry.bitstream.bytes.size() >= 4
                                 ? entry.bitstream.bytes.size() - 4
                                 : 0;
    if (fpga::crc32(entry.bitstream.bytes.data(), body) !=
        entry.bitstream.crc32)
      return false;
  }
  return true;
}

void read_bytes(std::FILE* f, void* data, std::size_t n) {
  if (std::fread(data, 1, n, f) != n)
    throw std::runtime_error("cache file: truncated");
}
template <typename T>
T read_pod(std::FILE* f) {
  T v;
  read_bytes(f, &v, sizeof(v));
  return v;
}
std::string read_string(std::FILE* f) {
  const auto n = read_pod<std::uint32_t>(f);
  if (n > (1u << 20)) throw std::runtime_error("cache file: bad string size");
  std::string s(n, '\0');
  read_bytes(f, s.data(), n);
  return s;
}

/// Pushes stdio-flushed bytes of `f` down to stable storage.
void fdatasync_file(std::FILE* f, const std::string& what) {
  if (::fdatasync(::fileno(f)) != 0)
    throw std::runtime_error(what + ": fdatasync failed");
}

/// Fsyncs the directory containing `path`, making a just-renamed entry
/// durable (a rename is only on stable storage once its directory is).
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0)
    throw std::runtime_error("cannot open directory for fsync: " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw std::runtime_error("directory fsync failed: " + dir);
}

/// Opens `<path>.tmp`, lets `fill` write into it, and renames over `path` —
/// so an interrupted save (exception, injected crash) can never destroy the
/// previous good file. On failure the temp file is removed. With `durable`,
/// the temp file is fdatasynced before the rename and the directory is
/// fsynced after it, so the replacement survives power loss, not just
/// process death.
template <typename Fill>
void atomic_rewrite(const std::string& path, const Fill& fill,
                    bool durable = false) {
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (!f)
      throw std::runtime_error("cannot open cache file for writing: " + tmp);
    try {
      Writer w{f.get()};
      fill(w);
      if (std::fflush(f.get()) != 0)
        throw std::runtime_error("cache file: flush failed");
      if (durable) fdatasync_file(f.get(), "cache file '" + tmp + "'");
    } catch (...) {
      f.reset();
      std::remove(tmp.c_str());
      throw;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " over " + path);
  }
  if (durable) fsync_parent_dir(path);
}

/// Writes a complete v2 journal for `entries` (most-recent-first, as
/// `snapshot()` returns them): records go oldest first with stamps 1..N, so
/// a replay reproduces the LRU order — and a save→load→save round trip is
/// byte-identical.
void write_v2_file(
    const std::string& path,
    const std::vector<std::pair<std::uint64_t, CachedImplementation>>&
        entries,
    bool durable = false) {
  atomic_rewrite(
      path,
      [&](Writer& w) {
        w.pod(kMagic);
        w.pod(kVersionV2);
        std::uint64_t stamp = 0;
        for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
          const auto frame = make_record(kKindInsert, ++stamp, it->first,
                                         &it->second);
          w.bytes(frame.data(), frame.size());
        }
      },
      durable);
}

/// v2 replay: applies wholly intact records in file order; stops at the
/// first torn or corrupt one, keeping everything before it.
CacheLoadReport load_v2(BitstreamCache& cache, std::FILE* f) {
  CacheLoadReport report;
  report.version = kVersionV2;
  report.valid_bytes = 8;  // header
  for (;;) {
    std::uint32_t magic = 0, len = 0, crc = 0;
    const std::size_t got = std::fread(&magic, 1, sizeof(magic), f);
    if (got == 0) break;  // clean EOF on a record boundary
    bool intact = got == sizeof(magic) && magic == kRecordMagic &&
                  std::fread(&len, 1, sizeof(len), f) == sizeof(len) &&
                  std::fread(&crc, 1, sizeof(crc), f) == sizeof(crc) &&
                  len <= kMaxRecordBytes;
    std::vector<std::uint8_t> body;
    if (intact) {
      body.resize(len);
      intact = std::fread(body.data(), 1, len, f) == len &&
               fpga::crc32(body.data(), body.size()) == crc;
    }
    std::uint32_t kind = 0;
    std::uint64_t stamp = 0, signature = 0;
    CachedImplementation entry;
    if (intact) {
      Cursor c{body.data(), body.size()};
      intact = c.pod(kind) && c.pod(stamp) && c.pod(signature) &&
               (kind == kKindInsert ? decode_entry(c, entry)
                                    : kind == kKindEvict) &&
               c.remaining() == 0;
    }
    if (!intact) {
      report.recovered_truncation = true;
      break;
    }
    if (kind == kKindInsert) {
      cache.insert(signature, std::move(entry));
    } else {
      cache.erase(signature);
      ++report.tombstones;
    }
    ++report.records;
    report.valid_bytes += 12 + static_cast<std::uint64_t>(len);
  }
  report.entries = cache.entries();
  return report;
}

/// Legacy v1 body: all-or-nothing, exactly the pre-journal semantics — the
/// file parses fully before any entry commits, and a failure clears the
/// cache. Entries are committed oldest-first so the reloaded LRU order
/// matches the saved one (a v1 save→load→save round trip is byte-identical).
CacheLoadReport load_v1(BitstreamCache& cache, std::FILE* f,
                        const std::string& path) {
  CacheLoadReport report;
  report.version = kVersionV1;
  std::vector<std::pair<std::uint64_t, CachedImplementation>> parsed;
  try {
    const auto count = read_pod<std::uint64_t>(f);
    parsed.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1ull << 20)));
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto signature = read_pod<std::uint64_t>(f);
      CachedImplementation entry;
      entry.hw_cycles = read_pod<std::uint32_t>(f);
      entry.critical_path_ns = read_pod<double>(f);
      entry.area_slices = read_pod<double>(f);
      entry.cells = static_cast<std::size_t>(read_pod<std::uint64_t>(f));
      entry.generation_seconds = read_pod<double>(f);
      entry.bitstream.part = read_string(f);
      entry.bitstream.region_width = read_pod<std::uint16_t>(f);
      entry.bitstream.region_height = read_pod<std::uint16_t>(f);
      entry.bitstream.frame_count = read_pod<std::uint32_t>(f);
      entry.bitstream.crc32 = read_pod<std::uint32_t>(f);
      const auto nbytes = read_pod<std::uint64_t>(f);
      if (nbytes > (1ull << 30)) throw std::runtime_error("bad size");
      entry.bitstream.bytes.resize(static_cast<std::size_t>(nbytes));
      read_bytes(f, entry.bitstream.bytes.data(),
                 entry.bitstream.bytes.size());
      // Integrity: the stored CRC must match the payload (excluding the
      // trailing CRC word appended by bitgen).
      if (!entry.bitstream.bytes.empty()) {
        const std::size_t body = entry.bitstream.bytes.size() >= 4
                                     ? entry.bitstream.bytes.size() - 4
                                     : 0;
        if (fpga::crc32(entry.bitstream.bytes.data(), body) !=
            entry.bitstream.crc32)
          throw std::runtime_error("CRC mismatch (corrupt entry)");
      }
      parsed.emplace_back(signature, std::move(entry));
    }
  } catch (const std::exception& e) {
    cache.clear();
    throw std::runtime_error("cache file '" + path + "': load failed (" +
                             e.what() + "); cache cleared");
  }
  // The file is written most-recent-first; insert in reverse so the most
  // recent entry receives the newest stamp and the LRU order survives.
  for (auto it = parsed.rbegin(); it != parsed.rend(); ++it)
    cache.insert(it->first, std::move(it->second));
  report.entries = cache.entries();
  return report;
}

}  // namespace

namespace testing_hooks {
void set_cache_io_write_hook(CacheIoWriteHook hook) {
  g_write_hook = std::move(hook);
}
}  // namespace testing_hooks

void save_cache(const BitstreamCache& cache, const std::string& path) {
  write_v2_file(path, cache.snapshot());
}

void save_cache_v1(const BitstreamCache& cache, const std::string& path) {
  const auto entries = cache.snapshot();
  atomic_rewrite(path, [&](Writer& w) {
    w.pod(kMagic);
    w.pod(kVersionV1);
    w.pod<std::uint64_t>(entries.size());
    for (const auto& [signature, entry] : entries) {
      w.pod(signature);
      w.pod(entry.hw_cycles);
      w.pod(entry.critical_path_ns);
      w.pod(entry.area_slices);
      w.pod<std::uint64_t>(entry.cells);
      w.pod(entry.generation_seconds);
      const fpga::Bitstream& bs = entry.bitstream;
      w.str(bs.part);
      w.pod(bs.region_width);
      w.pod(bs.region_height);
      w.pod(bs.frame_count);
      w.pod(bs.crc32);
      w.pod<std::uint64_t>(bs.bytes.size());
      w.bytes(bs.bytes.data(), bs.bytes.size());
    }
  });
}

CacheLoadReport load_cache(BitstreamCache& cache, const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open cache file: " + path);

  // Header damage throws without touching the cache: there is no entry data
  // to salvage before it, and clearing would punish an unrelated mixup
  // (pointing the loader at a non-cache file).
  std::uint32_t magic = 0, version = 0;
  if (std::fread(&magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      magic != kMagic)
    throw std::runtime_error("cache file '" + path + "': bad magic");
  if (std::fread(&version, 1, sizeof(version), f.get()) != sizeof(version))
    throw std::runtime_error("cache file '" + path + "': truncated header");
  if (version == kVersionV1) return load_v1(cache, f.get(), path);
  if (version == kVersionV2) return load_v2(cache, f.get());
  throw std::runtime_error("cache file '" + path + "': unsupported version");
}

// -- CacheJournal ----------------------------------------------------------

CacheJournal::CacheJournal(std::string path, CompactionPolicy policy)
    : path_(std::move(path)), policy_(policy), shards_(16) {}

CacheJournal::~CacheJournal() {
  try {
    sync();
  } catch (...) {
    // Destructor durability is best-effort; the journal recovers a torn
    // tail on the next load anyway.
  }
  std::lock_guard<std::mutex> lock(file_mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

CacheLoadReport CacheJournal::attach(BitstreamCache& cache) {
  {
    std::lock_guard<std::mutex> lock(file_mu_);
    if (file_ != nullptr)
      throw std::runtime_error("cache journal '" + path_ +
                               "': already attached");
  }

  CacheLoadReport report;
  report.version = kVersionV2;
  bool fresh = true;
  if (File probe{std::fopen(path_.c_str(), "rb")}) {
    // An empty file (e.g. external truncation to zero) counts as fresh.
    std::fseek(probe.get(), 0, SEEK_END);
    fresh = std::ftell(probe.get()) == 0;
  }
  if (!fresh) {
    report = load_cache(cache, path_);
    if (report.version == kVersionV1) {
      // One-shot migration: rewrite the legacy snapshot as a v2 journal
      // (atomic, so a crash mid-migration leaves the v1 file intact).
      save_cache(cache, path_);
      report.records = report.entries;
    } else if (report.recovered_truncation) {
      // Drop the torn tail in place so appends land after the valid prefix
      // instead of extending garbage.
      if (::truncate(path_.c_str(),
                     static_cast<off_t>(report.valid_bytes)) != 0)
        throw std::runtime_error("cache journal '" + path_ +
                                 "': cannot truncate torn tail");
    }
  } else {
    write_v2_file(path_, {});  // header-only journal, atomically
  }

  std::lock_guard<std::mutex> lock(file_mu_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("cannot open cache journal for append: " +
                             path_);
  file_records_.store(report.records, std::memory_order_relaxed);
  stamp_.store(report.records, std::memory_order_relaxed);
  cache.set_journal(this);
  return report;
}

void CacheJournal::buffer_record(std::uint64_t signature,
                                 const std::vector<std::uint8_t>& frame) {
  Shard& shard = shard_of(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.pending.insert(shard.pending.end(), frame.begin(), frame.end());
  ++shard.records;
}

void CacheJournal::record_insert(std::uint64_t signature,
                                 const CachedImplementation& entry) {
  const std::uint64_t stamp =
      stamp_.fetch_add(1, std::memory_order_relaxed) + 1;
  buffer_record(signature, make_record(kKindInsert, stamp, signature, &entry));
}

void CacheJournal::record_evict(std::uint64_t signature) {
  const std::uint64_t stamp =
      stamp_.fetch_add(1, std::memory_order_relaxed) + 1;
  buffer_record(signature,
                make_record(kKindEvict, stamp, signature, nullptr));
}

std::size_t CacheJournal::drain_pending(std::vector<std::uint8_t>& out) {
  std::size_t records = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.pending.begin(), shard.pending.end());
    records += shard.records;
    shard.pending.clear();
    shard.records = 0;
  }
  return records;
}

std::size_t CacheJournal::sync() {
  std::vector<std::uint8_t> bytes;
  const std::size_t records = drain_pending(bytes);
  if (records == 0) return 0;

  std::lock_guard<std::mutex> lock(file_mu_);
  if (file_ == nullptr)
    throw std::runtime_error("cache journal '" + path_ + "': not attached");
  std::fseek(file_, 0, SEEK_END);
  std::uint64_t offset = static_cast<std::uint64_t>(std::ftell(file_));
  // Chunked so an injected crash (or a real short write) tears mid-record;
  // replay recovery keeps everything before the torn record.
  for (std::size_t at = 0; at < bytes.size(); at += kAppendChunk)
    checked_write(file_, offset, bytes.data() + at,
                  std::min(kAppendChunk, bytes.size() - at));
  if (std::fflush(file_) != 0)
    throw std::runtime_error("cache journal '" + path_ + "': flush failed");
  if (fsync_.load(std::memory_order_relaxed))
    fdatasync_file(file_, "cache journal '" + path_ + "'");
  file_records_.fetch_add(records, std::memory_order_relaxed);
  return records;
}

void CacheJournal::compact(const BitstreamCache& cache) {
  // Buffered records were recorded under the cache's stripe locks *after*
  // the state change, so the snapshot below supersedes them: discard. (A
  // record buffered between the drain and the snapshot duplicates snapshot
  // state; replay is idempotent, so a later append of it is harmless.)
  {
    std::vector<std::uint8_t> discard;
    drain_pending(discard);
  }
  const auto entries = cache.snapshot();

  std::lock_guard<std::mutex> lock(file_mu_);
  // Write the replacement fully before touching the live file: if this
  // throws (I/O failure or injected crash), the old journal and the open
  // append handle both survive. In fsync mode the rewrite is durable end to
  // end: the tmp file is fdatasynced before the rename, the directory
  // fsynced after it.
  write_v2_file(path_, entries, fsync_.load(std::memory_order_relaxed));
  // write_v2_file's rename already atomically replaced the path; the old
  // handle now points at the unlinked inode — reopen on the new file.
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("cannot reopen cache journal: " + path_);
  file_records_.store(entries.size(), std::memory_order_relaxed);
  stamp_.store(entries.size(), std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

bool CacheJournal::maybe_compact(const BitstreamCache& cache) {
  sync();
  const std::uint64_t records =
      file_records_.load(std::memory_order_relaxed);
  if (records == 0) return false;

  std::uint64_t file_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(file_mu_);
    if (file_ == nullptr) return false;
    std::fseek(file_, 0, SEEK_END);
    file_bytes = static_cast<std::uint64_t>(std::ftell(file_));
  }
  if (file_bytes < policy_.min_file_bytes) return false;
  const std::uint64_t live = cache.entries();
  const std::uint64_t garbage = records > live ? records - live : 0;
  if (static_cast<double>(garbage) <=
      policy_.max_garbage_ratio * static_cast<double>(records))
    return false;
  compact(cache);
  return true;
}

}  // namespace jitise::jit
