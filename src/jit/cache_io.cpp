#include "jit/cache_io.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fpga/bitgen.hpp"

namespace jitise::jit {

namespace {

constexpr std::uint32_t kMagic = 0x4A495443;  // "JITC"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t n) {
  if (std::fwrite(data, 1, n, f) != n)
    throw std::runtime_error("cache file: write failed");
}
template <typename T>
void write_pod(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes(f, &v, sizeof(v));
}
void write_string(std::FILE* f, const std::string& s) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(s.size()));
  write_bytes(f, s.data(), s.size());
}

void read_bytes(std::FILE* f, void* data, std::size_t n) {
  if (std::fread(data, 1, n, f) != n)
    throw std::runtime_error("cache file: truncated");
}
template <typename T>
T read_pod(std::FILE* f) {
  T v;
  read_bytes(f, &v, sizeof(v));
  return v;
}
std::string read_string(std::FILE* f) {
  const auto n = read_pod<std::uint32_t>(f);
  if (n > (1u << 20)) throw std::runtime_error("cache file: bad string size");
  std::string s(n, '\0');
  read_bytes(f, s.data(), n);
  return s;
}

}  // namespace

void save_cache(const BitstreamCache& cache, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open cache file for writing: " + path);

  const auto entries = cache.snapshot();
  write_pod(f.get(), kMagic);
  write_pod(f.get(), kVersion);
  write_pod<std::uint64_t>(f.get(), entries.size());
  for (const auto& [signature, entry] : entries) {
    write_pod(f.get(), signature);
    write_pod(f.get(), entry.hw_cycles);
    write_pod(f.get(), entry.critical_path_ns);
    write_pod(f.get(), entry.area_slices);
    write_pod<std::uint64_t>(f.get(), entry.cells);
    write_pod(f.get(), entry.generation_seconds);
    const fpga::Bitstream& bs = entry.bitstream;
    write_string(f.get(), bs.part);
    write_pod(f.get(), bs.region_width);
    write_pod(f.get(), bs.region_height);
    write_pod(f.get(), bs.frame_count);
    write_pod(f.get(), bs.crc32);
    write_pod<std::uint64_t>(f.get(), bs.bytes.size());
    write_bytes(f.get(), bs.bytes.data(), bs.bytes.size());
  }
}

void load_cache(BitstreamCache& cache, const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open cache file: " + path);

  // Two-stage load: parse the whole file into a local buffer first, then
  // commit. A truncated or corrupt file must never leave the cache holding a
  // silently partial entry set — on any parse failure the cache is cleared
  // (not left half-populated) and the error reports why.
  std::vector<std::pair<std::uint64_t, CachedImplementation>> parsed;
  try {
    if (read_pod<std::uint32_t>(f.get()) != kMagic)
      throw std::runtime_error("bad magic");
    if (read_pod<std::uint32_t>(f.get()) != kVersion)
      throw std::runtime_error("unsupported version");
    const auto count = read_pod<std::uint64_t>(f.get());
    parsed.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1ull << 20)));
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto signature = read_pod<std::uint64_t>(f.get());
      CachedImplementation entry;
      entry.hw_cycles = read_pod<std::uint32_t>(f.get());
      entry.critical_path_ns = read_pod<double>(f.get());
      entry.area_slices = read_pod<double>(f.get());
      entry.cells = static_cast<std::size_t>(read_pod<std::uint64_t>(f.get()));
      entry.generation_seconds = read_pod<double>(f.get());
      entry.bitstream.part = read_string(f.get());
      entry.bitstream.region_width = read_pod<std::uint16_t>(f.get());
      entry.bitstream.region_height = read_pod<std::uint16_t>(f.get());
      entry.bitstream.frame_count = read_pod<std::uint32_t>(f.get());
      entry.bitstream.crc32 = read_pod<std::uint32_t>(f.get());
      const auto nbytes = read_pod<std::uint64_t>(f.get());
      if (nbytes > (1ull << 30)) throw std::runtime_error("bad size");
      entry.bitstream.bytes.resize(static_cast<std::size_t>(nbytes));
      read_bytes(f.get(), entry.bitstream.bytes.data(),
                 entry.bitstream.bytes.size());
      // Integrity: the stored CRC must match the payload (excluding the
      // trailing CRC word appended by bitgen).
      if (!entry.bitstream.bytes.empty()) {
        const std::size_t body = entry.bitstream.bytes.size() >= 4
                                     ? entry.bitstream.bytes.size() - 4
                                     : 0;
        if (fpga::crc32(entry.bitstream.bytes.data(), body) !=
            entry.bitstream.crc32)
          throw std::runtime_error("CRC mismatch (corrupt entry)");
      }
      parsed.emplace_back(signature, std::move(entry));
    }
  } catch (const std::exception& e) {
    cache.clear();
    throw std::runtime_error("cache file '" + path + "': load failed (" +
                             e.what() + "); cache cleared");
  }
  for (auto& [signature, entry] : parsed)
    cache.insert(signature, std::move(entry));
}

}  // namespace jitise::jit
