// Adaptive-execution timeline simulation (paper Figure 1 and §V-D).
//
// In the deployed system the application executes on the VM while the ASIP
// Specialization Process runs concurrently on the host workstation; when
// bitstreams are ready the FCM is partially reconfigured and execution
// continues accelerated. This module simulates that timeline for a workload
// of repeated executions and reports when the hardware-generation overhead
// is amortized.
#pragma once

#include <string>
#include <vector>

#include "jit/specializer.hpp"

namespace jitise::jit {

struct TimelineEvent {
  double at_seconds = 0.0;
  std::string what;
};

struct AdaptiveRunReport {
  std::vector<TimelineEvent> events;

  double one_execution_s = 0.0;        // VM time of one profiled execution
  double accelerated_execution_s = 0.0;
  double speedup = 1.0;

  double specialization_ready_at = 0.0;  // profile + ASIP-SP + reconfig
  double reconfiguration_s = 0.0;

  /// Time at which the cumulative saved execution time equals the ASIP-SP
  /// overhead (kNeverBreaksEven if the speedup is 1.0).
  double break_even_at = 0.0;
  std::uint64_t executions_to_break_even = 0;

  /// Total wall-clock for `workload_executions` with and without JIT ISE.
  double vm_only_total_s = 0.0;
  double adaptive_total_s = 0.0;
};

struct AdaptiveRunConfig {
  SpecializerConfig specializer;
  woolcano::WoolcanoConfig woolcano;
  /// How many times the profiled input executes in the simulated workload.
  std::uint64_t workload_executions = 100000;
  /// Optional bitstream cache shared across simulated runs: with a warm
  /// cache the ASIP-SP skips generation entirely (Table IV's scenario) and
  /// the timeline reflects near-zero implementation overhead.
  BitstreamCache* cache = nullptr;
};

/// Simulates the adaptive run of `module(entry, args)`. The first execution
/// profiles; the specialization process starts immediately afterwards and
/// overlaps subsequent executions.
[[nodiscard]] AdaptiveRunReport simulate_adaptive_run(
    const ir::Module& module, const std::string& entry,
    std::span<const vm::Slot> args, const AdaptiveRunConfig& config = {});

}  // namespace jitise::jit
