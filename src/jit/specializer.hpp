// The ASIP Specialization Process — the paper's core contribution
// (Figure 2): Candidate Search (prune -> identify -> estimate -> select),
// Netlist Generation, Instruction Implementation, and the adaptation phase
// that rewrites the running binary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cad/flow.hpp"
#include "estimation/estimator.hpp"
#include "ise/isegen.hpp"
#include "ise/pruning.hpp"
#include "ise/selection.hpp"
#include "jit/cache.hpp"
#include "support/cancellation.hpp"
#include "woolcano/asip.hpp"

namespace jitise::jit {

struct SpecializerConfig {
  /// Identification algorithm (ablation: Union-MISO grows candidates past
  /// the MAXMISO partition, addressing the paper's §V-D size limitation).
  enum class Identify { MaxMiso, UnionMiso };
  Identify identify = Identify::MaxMiso;
  ise::PruneConfig prune = ise::PruneConfig::at50pS3L();
  ise::SelectConfig select;
  /// Selection algorithm. Greedy is the deterministic density heuristic;
  /// Knapsack the exact DP ablation; Isegen seeds from greedy and spends an
  /// iteration/time budget on KL-style refinement (anytime: the server maps
  /// per-request deadline headroom onto `isegen.time_budget_ms`, and an
  /// expiring budget degrades to greedy quality instead of failing).
  enum class Selector { Greedy, Knapsack, Isegen };
  Selector selector = Selector::Greedy;
  /// Iteration/time budget and determinism knobs for Selector::Isegen.
  ise::IsegenConfig isegen;
  estimation::FcmTiming fcm;
  vm::CostModel cpu;
  cad::ToolFlowConfig flow;
  woolcano::WoolcanoConfig woolcano;
  /// Skip the CAD flow and use estimation-based hardware cycles (used by
  /// upper-bound experiments; no bitstreams are produced).
  bool implement_hardware = true;
  /// Parallelism for the whole pipeline. All parallel work — per-block
  /// search (`Phase::Search`), per-candidate estimation (`Phase::Estimate`)
  /// and the per-candidate CAD chain (`Phase::Cad`) — runs as phase-tagged
  /// tasks on ONE support::Executor; there is no static per-phase worker
  /// split, idle workers steal across phases. 0 means
  /// hardware_concurrency, 1 runs strictly serially. When the caller owns a
  /// long-lived executor (the specialization server's shared
  /// WorkStealingPool), `jobs > 1` merely opts the run into it and the
  /// executor's width decides the real parallelism; a direct call with
  /// `jobs > 1` gets a run-scoped private pool of this size. Any value
  /// produces a bit-identical SpecializationResult: CAD jitter is seeded
  /// per candidate signature, block results are absorbed by a serial
  /// reducer in block order, and all bookkeeping (cycle accounting,
  /// registry insertion, `implemented` order, cache population) stays in a
  /// serial tail.
  unsigned jobs = 0;
  /// DEPRECATED — the one executor serves every phase, so search no longer
  /// has a worker budget of its own (the ceiling-half
  /// `resolve_search_jobs` split is gone). Accepted for back-compat:
  /// 1 forces the classic serial per-block search loop; 0 follows `jobs`;
  /// any other value opts search into the executor (and sizes a private
  /// pool when no executor is borrowed, so old `jobs=1, search_jobs=N`
  /// search-only configs still fan out N-wide).
  unsigned search_jobs = 0;
  /// Overlap Phase 1 with Phases 2+3 (jobs > 1 only): as candidate search
  /// finishes scoring a block, candidates in the provisional incremental
  /// selection already stream into CAD tasks instead of waiting for the
  /// full selection barrier. Output stays bit-identical to the staged run —
  /// CAD results are signature-keyed and the serial tail consumes them in
  /// final selection order; speculative work for candidates that drop out
  /// of the final selection is simply discarded. With work-stealing this
  /// flag no longer moves workers between phases; it only controls the
  /// speculative streaming.
  bool overlap_phases = true;
  /// Emit a one-line per-candidate CAD timing trace to stderr (real ms per
  /// stage plus the worker thread id) so the parallel speedup is observable.
  /// Installed as the default TraceObserver on the pipeline; the sink is
  /// mutex-guarded so worker lines never interleave mid-line.
  bool trace_stages = false;
  /// When a CacheJournal (jit/cache_io.hpp) is attached to the bitstream
  /// cache, flush its buffered insert/evict records — and run the
  /// size/garbage-triggered compaction — at the end of the run, emitting
  /// `on_cache_journal_sync`. Off leaves durability entirely to the
  /// caller's explicit `sync()`.
  bool sync_cache_journal = true;
  /// Power-loss durability for the persistence tail: before syncing an
  /// attached journal, switch it to fsync mode (`CacheJournalSink::
  /// set_fsync`), so the flushed records are `fdatasync`ed to stable storage
  /// (and compaction fsyncs the renamed file and its directory). Off keeps
  /// the process-death crash model only (stdio flush).
  bool journal_fsync = false;
  /// Cooperative cancellation (jit/pipeline checks it at stage boundaries:
  /// between search blocks, before each CAD dispatch/run, and between
  /// serial-tail candidates — never inside a cache or journal mutation, so a
  /// cancelled run can never tear shared state). A default-constructed token
  /// never cancels. When it fires, the pipeline throws
  /// support::CancelledError; the caller (the specialization server) reports
  /// partial progress via its observers.
  support::CancellationToken cancel;
};

/// Per-candidate implementation record (modeled seconds are zero on a
/// bitstream-cache hit — the paper's §VI-A accounting).
struct ImplementedCandidate {
  std::string name;
  std::uint64_t signature = 0;
  bool cache_hit = false;
  std::size_t instructions = 0;  // IR instructions covered
  std::size_t cells = 0;
  std::size_t bitstream_bytes = 0;
  std::uint32_t hw_cycles = 1;
  double area_slices = 0.0;
  double c2v_s = 0, syn_s = 0, xst_s = 0, tra_s = 0;
  double map_s = 0, par_s = 0, bitgen_s = 0;

  [[nodiscard]] double total_seconds() const noexcept {
    return c2v_s + syn_s + xst_s + tra_s + map_s + par_s + bitgen_s;
  }
  [[nodiscard]] double const_seconds() const noexcept {
    return total_seconds() - map_s - par_s;
  }
};

struct SpecializationResult {
  // Candidate search (paper Table II, left half).
  ise::PruneResult prune;
  double search_real_ms = 0.0;  // prune+identify+estimate+select, measured
  std::size_t candidates_found = 0;
  std::size_t candidates_selected = 0;
  std::size_t candidates_failed = 0;  // rejected by the CAD flow (fit/route)
  /// Selection refinement counters (zero-initialized unless
  /// SpecializerConfig::selector == Selector::Isegen ran).
  ise::IsegenStats isegen;

  // Implementation (paper Table II, Runtime Overheads).
  std::vector<ImplementedCandidate> implemented;
  double sum_const_s = 0.0;  // per-candidate constant stages, summed
  double sum_map_s = 0.0;
  double sum_par_s = 0.0;
  double sum_total_s = 0.0;

  // Adaptation.
  woolcano::CiRegistry registry;
  ir::Module rewritten;

  /// Speedup over the profiled execution predicted from cycle bookkeeping
  /// (base cycles / (base - saved)); the differential-execution measurement
  /// lives in woolcano::run_adapted.
  double predicted_speedup = 1.0;
};

/// Hardware cycles of one FCM execution given its combinational latency:
/// the fixed FCM interface overhead plus the latency rounded *up* to whole
/// clock periods (a partially used period still occupies a full cycle).
[[nodiscard]] std::uint32_t fcm_hw_cycles(double latency_ns,
                                          const SpecializerConfig& config);

/// Content hash of a whole (module, profile) pair — the *request-level*
/// signature of the specialization service. Uses the same 64-bit FNV-1a
/// family as ise::candidate_signature, so every memoization tier of the
/// serving stack keys into one signature space: the server's in-flight
/// coalescing map (request signature) stacked on the EstimateCache, the
/// shared BitstreamCache and its journal (candidate signatures).
/// Conservative by construction: every field that can influence a
/// SpecializationResult feeds the hash — names included, since they flow
/// into candidate and registry naming — so equal signatures imply
/// bit-identical pipeline output under one SpecializerConfig.
[[nodiscard]] std::uint64_t request_signature(const ir::Module& module,
                                              const vm::Profile& profile);

/// Runs the complete ASIP-SP against a profiled module. If `cache` is given,
/// implementations are looked up/inserted by candidate signature. If
/// `estimates` is given, per-candidate estimation memoizes into it by
/// candidate signature (share one across runs/tenants to dedup identical
/// candidates; results are bit-identical with or without it).
[[nodiscard]] SpecializationResult specialize(
    const ir::Module& module, const vm::Profile& profile,
    const SpecializerConfig& config, BitstreamCache* cache = nullptr,
    estimation::EstimateCache* estimates = nullptr);

/// The paper's Table-I "ASIP ratio" upper bound: every MAXMISO candidate in
/// every executed block is assumed implemented (no pruning, no budgets, no
/// CAD); hardware cycles come from estimation.
struct UpperBound {
  std::uint64_t base_cycles = 0;
  double saved_cycles = 0.0;
  std::size_t candidates = 0;

  [[nodiscard]] double ratio() const noexcept {
    const double accel = static_cast<double>(base_cycles) - saved_cycles;
    return accel > 0.0 ? static_cast<double>(base_cycles) / accel : 1.0;
  }
};

[[nodiscard]] UpperBound asip_upper_bound(const ir::Module& module,
                                          const vm::Profile& profile,
                                          const vm::CostModel& cpu = {},
                                          const estimation::FcmTiming& fcm = {});

}  // namespace jitise::jit
