// Adaptation — the order-sensitive serial tail of the ASIP-SP: cache
// lookup/population, cycle accounting, registry insertion, and the binary
// rewrite. Running every order-sensitive effect here, in final selection
// order, is what makes jobs=N (and phase overlap) bit-identical to jobs=1.
#include "jit/pipeline.hpp"

#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "support/stopwatch.hpp"
#include "woolcano/rewriter.hpp"

namespace jitise::jit {

SpecializationResult AdaptationStage::run(
    const ir::Module& module, const vm::Profile& profile,
    SearchArtifact& search, std::span<const std::string> names,
    const ImplLookupFn& lookup, const SerialCadFn& serial_cad,
    PipelineObserver& observer) const {
  observer.on_phase_enter(PipelinePhase::Adaptation);
  support::Stopwatch timer;

  SpecializationResult result;
  result.candidates_found = search.scored.size();
  result.candidates_selected = search.selection.chosen.size();
  result.search_real_ms = search.search_real_ms;
  result.isegen = search.isegen;

  // Index pruned blocks by (function, block) once; the activation loop
  // below used to rescan the whole pruned list per candidate.
  std::map<std::pair<ir::FuncId, ir::BlockId>, std::uint64_t> exec_of;
  for (const ise::PrunedBlock& b : search.prune.blocks)
    exec_of[{b.function, b.block}] = b.exec_count;

  double saved_cycles_total = 0.0;
  for (std::size_t k = 0; k < search.selection.chosen.size(); ++k) {
    // Cancellation point: between candidates, before any of this
    // candidate's bookkeeping — never between a cache insert and its
    // journal record, so cancellation can't tear the shared cache state.
    config_.cancel.check();
    const std::size_t idx = search.selection.chosen[k];
    const ise::ScoredCandidate& sc = search.scored[idx];
    const estimation::CandidateEstimate& est = search.estimates[idx];
    const dfg::BlockDfg& graph = *search.graphs[search.graph_of[idx]];
    ImplementedCandidate impl;
    impl.name = names[k];
    impl.signature = sc.signature;
    impl.instructions = sc.candidate.size();
    impl.area_slices = sc.area_slices;

    woolcano::CustomInstruction ci;
    ci.candidate = sc.candidate;
    ci.signature = sc.signature;
    ci.program = woolcano::snapshot_program(graph, sc.candidate);
    ci.area_slices = sc.area_slices;

    if (!config_.implement_hardware) {
      ci.hw_cycles = est.hw_cycles;
      ci.critical_path_ns = est.hw_latency_ns;
      impl.hw_cycles = ci.hw_cycles;
    } else {
      std::optional<CachedImplementation> hit;
      if (cache_) hit = cache_->lookup(impl.signature);
      if (hit) {
        observer.on_cache_hit(impl.name, impl.signature);
        impl.cache_hit = true;
        impl.cells = hit->cells;
        impl.bitstream_bytes = hit->bitstream.size_bytes();
        impl.hw_cycles = hit->hw_cycles;
        ci.hw_cycles = hit->hw_cycles;
        ci.critical_path_ns = hit->critical_path_ns;
        ci.bitstream_bytes = hit->bitstream.size_bytes();
        // All generation stages are skipped: zero modeled seconds.
      } else {
        // Pre-generated results are keyed by signature: identical datapaths
        // produce identical CAD results (jitter is signature-seeded), so
        // one slot serves every occurrence. The serial fallback covers
        // jobs=1-only edge cases (a dispatch-time cache entry evicted
        // before the tail reached this position).
        cad::ImplementationResult hw;
        const ImplementationArtifact* pre =
            lookup ? lookup(impl.signature) : nullptr;
        if (pre != nullptr && pre->dispatched) {
          if (pre->failed) {
            // Oversized or unroutable candidate: the tool flow rejects it
            // and the specializer simply drops it (it stays in software).
            ++result.candidates_failed;
            continue;
          }
          hw = pre->hw;
        } else {
          ImplementationArtifact serial = serial_cad(k);
          if (serial.failed) {
            ++result.candidates_failed;
            continue;
          }
          hw = std::move(serial.hw);
        }
        impl.cells = hw.cells;
        impl.bitstream_bytes = hw.bitstream.size_bytes();
        impl.c2v_s = hw.c2v.modeled_seconds;
        impl.syn_s = hw.syn.modeled_seconds;
        impl.xst_s = hw.xst.modeled_seconds;
        impl.tra_s = hw.tra.modeled_seconds;
        impl.map_s = hw.map.modeled_seconds;
        impl.par_s = hw.par.modeled_seconds;
        impl.bitgen_s = hw.bitgen.modeled_seconds;
        // STA measures interconnect over the coarse cluster netlist; the
        // component database carries each core's true combinational latency.
        // The effective FCM latency is bounded below by both.
        ci.critical_path_ns =
            std::max(hw.timing.critical_path_ns, est.hw_latency_ns);
        ci.hw_cycles = std::max(fcm_hw_cycles(ci.critical_path_ns, config_),
                                est.hw_cycles);
        ci.bitstream_bytes = hw.bitstream.size_bytes();
        impl.hw_cycles = ci.hw_cycles;
        if (cache_)
          cache_->insert(impl.signature,
                         CachedImplementation{hw.bitstream, ci.hw_cycles,
                                              ci.critical_path_ns,
                                              impl.area_slices, hw.cells,
                                              impl.total_seconds()});
      }
    }

    // Cycle bookkeeping for the predicted speedup: actual hardware cycles
    // replace the estimate in the saving. A candidate whose implemented
    // latency turned out no better than software is *not activated* (the VM
    // keeps the software path), but its generation cost was already paid —
    // exactly the paper's accounting, where every implemented candidate
    // contributes to the overhead regardless of its eventual benefit.
    const double saved_per_exec = static_cast<double>(est.sw_cycles) -
                                  static_cast<double>(ci.hw_cycles);
    const bool activated = saved_per_exec > 0.0;
    if (activated) {
      const auto it =
          exec_of.find({sc.candidate.function, sc.candidate.block});
      if (it != exec_of.end())
        saved_cycles_total +=
            saved_per_exec * static_cast<double>(it->second);
    }

    result.sum_const_s += impl.const_seconds();
    result.sum_map_s += impl.map_s;
    result.sum_par_s += impl.par_s;
    result.sum_total_s += impl.total_seconds();
    if (activated) result.registry.add(std::move(ci));
    result.implemented.push_back(std::move(impl));
  }

  result.prune = std::move(search.prune);
  result.rewritten = woolcano::rewrite_module(module, result.registry);
  const double base = static_cast<double>(profile.cpu_cycles);
  const double accel = base - saved_cycles_total;
  result.predicted_speedup = accel > 0.0 && base > 0.0 ? base / accel : 1.0;
  observer.on_phase_exit(PipelinePhase::Adaptation, timer.elapsed_ms());
  return result;
}

}  // namespace jitise::jit
