// Per-basic-block data-flow graphs — the search space of the ISE algorithms.
//
// Nodes are the block's instructions in order (which is a topological order,
// since SSA forbids in-block forward references outside phis, and phis sit at
// the block front taking only external/loop-carried inputs). Edges follow
// operand references between instructions of the same block.
//
// Hardware feasibility (paper §V-D): instructions that access memory or
// global storage, control flow, calls and phis can never be part of a custom
// instruction — the Woolcano functional units have neither a memory port nor
// control visibility. These nodes remain in the graph (they shape candidate
// boundaries) but are excluded from every candidate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ir/module.hpp"

namespace jitise::dfg {

using NodeId = std::uint32_t;

/// True if `op` may appear inside a hardware custom instruction.
[[nodiscard]] constexpr bool hw_feasible(ir::Opcode op) noexcept {
  using ir::Opcode;
  switch (op) {
    case Opcode::Load: case Opcode::Store: case Opcode::Alloca:
    case Opcode::GlobalAddr:                       // global/memory access
    case Opcode::Br: case Opcode::CondBr: case Opcode::Ret:  // control flow
    case Opcode::Call: case Opcode::Phi:
    case Opcode::CustomOp:                         // already an extension
    case Opcode::Param: case Opcode::ConstInt: case Opcode::ConstFloat:
      return false;
    default:
      return true;
  }
}

/// Data-flow graph of one basic block plus function-level use information.
class BlockDfg {
 public:
  BlockDfg(const ir::Function& fn, ir::BlockId block);

  [[nodiscard]] const ir::Function& function() const noexcept { return fn_; }
  [[nodiscard]] ir::BlockId block() const noexcept { return block_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// The instruction ValueId behind node `n`.
  [[nodiscard]] ir::ValueId value_of(NodeId n) const { return values_[n]; }
  /// Node index of `v` if it is an instruction of this block.
  [[nodiscard]] std::optional<NodeId> node_of(ir::ValueId v) const;

  /// In-block operand producers of `n` (deduplicated).
  [[nodiscard]] std::span<const NodeId> preds(NodeId n) const {
    return {preds_[n].data(), preds_[n].size()};
  }
  /// In-block consumers of `n`'s result (deduplicated).
  [[nodiscard]] std::span<const NodeId> succs(NodeId n) const {
    return {succs_[n].data(), succs_[n].size()};
  }

  [[nodiscard]] bool feasible(NodeId n) const { return feasible_[n]; }
  /// True if `n`'s value is used by an instruction outside this block.
  [[nodiscard]] bool used_outside(NodeId n) const { return used_outside_[n]; }

  [[nodiscard]] std::size_t feasible_count() const noexcept {
    std::size_t c = 0;
    for (bool f : feasible_) c += f;
    return c;
  }

  /// True if the node subset `in_set` (bitmask over nodes) is convex: no
  /// data-flow path leaves the set and re-enters it.
  [[nodiscard]] bool is_convex(const std::vector<bool>& in_set) const;

 private:
  const ir::Function& fn_;
  ir::BlockId block_;
  std::vector<ir::ValueId> values_;
  std::vector<std::vector<NodeId>> preds_;
  std::vector<std::vector<NodeId>> succs_;
  std::vector<bool> feasible_;
  std::vector<bool> used_outside_;
};

}  // namespace jitise::dfg
