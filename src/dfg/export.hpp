// Graphviz export of data-flow graphs (with optional node highlight) for
// documentation and debugging of the ISE algorithms.
#pragma once

#include <span>
#include <string>

#include "dfg/graph.hpp"

namespace jitise::dfg {

/// Renders the block DFG as a Graphviz digraph. Infeasible nodes are drawn
/// grey; `highlight` nodes (e.g. a candidate's) are filled.
[[nodiscard]] std::string to_dot(const BlockDfg& graph,
                                 std::span<const NodeId> highlight = {});

}  // namespace jitise::dfg
