#include "dfg/export.hpp"

#include <algorithm>

namespace jitise::dfg {

std::string to_dot(const BlockDfg& graph, std::span<const NodeId> highlight) {
  std::vector<bool> marked(graph.size(), false);
  for (NodeId n : highlight)
    if (n < graph.size()) marked[n] = true;

  std::string out = "digraph dfg {\n  rankdir=TB;\n  node [shape=box];\n";
  const ir::Function& fn = graph.function();
  for (NodeId n = 0; n < graph.size(); ++n) {
    const ir::Instruction& inst = fn.values[graph.value_of(n)];
    out += "  n" + std::to_string(n) + " [label=\"" +
           std::string(ir::opcode_name(inst.op)) + " " +
           std::string(ir::type_name(inst.type)) + "\"";
    if (marked[n])
      out += ", style=filled, fillcolor=lightblue";
    else if (!graph.feasible(n))
      out += ", color=grey, fontcolor=grey";
    out += "];\n";
  }
  for (NodeId n = 0; n < graph.size(); ++n)
    for (NodeId s : graph.succs(n))
      out += "  n" + std::to_string(n) + " -> n" + std::to_string(s) + ";\n";
  out += "}\n";
  return out;
}

}  // namespace jitise::dfg
