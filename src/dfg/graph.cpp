#include "dfg/graph.hpp"

#include <algorithm>
#include <unordered_map>

namespace jitise::dfg {

BlockDfg::BlockDfg(const ir::Function& fn, ir::BlockId block)
    : fn_(fn), block_(block) {
  const ir::BasicBlock& bb = fn.blocks[block];
  values_ = bb.instrs;
  const std::size_t n = values_.size();
  preds_.resize(n);
  succs_.resize(n);
  feasible_.resize(n);
  used_outside_.assign(n, false);

  std::unordered_map<ir::ValueId, NodeId> index;
  index.reserve(n);
  for (NodeId i = 0; i < n; ++i) index.emplace(values_[i], i);

  for (NodeId i = 0; i < n; ++i) {
    const ir::Instruction& inst = fn.values[values_[i]];
    feasible_[i] = hw_feasible(inst.op);
    // Phi operands are not data-flow edges inside the block: the incoming
    // value is consumed on the edge, before the block body runs.
    if (inst.op == ir::Opcode::Phi) continue;
    for (ir::ValueId o : inst.operands) {
      const auto it = index.find(o);
      if (it == index.end()) continue;
      if (std::find(preds_[i].begin(), preds_[i].end(), it->second) ==
          preds_[i].end())
        preds_[i].push_back(it->second);
      if (std::find(succs_[it->second].begin(), succs_[it->second].end(), i) ==
          succs_[it->second].end())
        succs_[it->second].push_back(i);
    }
  }

  // Function-level scan for uses of this block's values from other blocks
  // (including phi uses anywhere).
  for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
    for (ir::ValueId v : fn.blocks[b].instrs) {
      const ir::Instruction& inst = fn.values[v];
      const bool external_user = (b != block) || inst.op == ir::Opcode::Phi;
      if (!external_user) continue;
      for (ir::ValueId o : inst.operands) {
        const auto it = index.find(o);
        if (it != index.end()) used_outside_[it->second] = true;
      }
    }
  }
}

std::optional<NodeId> BlockDfg::node_of(ir::ValueId v) const {
  for (NodeId i = 0; i < values_.size(); ++i)
    if (values_[i] == v) return i;
  return std::nullopt;
}

bool BlockDfg::is_convex(const std::vector<bool>& in_set) const {
  // A set S is convex iff no node outside S is both reachable from S and
  // reaches S. Node order is topological, so one forward sweep computes
  // "descends from S" and membership of any S-node with an out-of-set
  // ancestor that itself descends from S flags a violation.
  const std::size_t n = size();
  std::vector<bool> tainted(n, false);  // outside-S node reachable from S
  for (NodeId i = 0; i < n; ++i) {
    bool from_s_outside = false;
    for (NodeId p : preds_[i]) {
      if (in_set[p] || tainted[p]) from_s_outside = true;
    }
    if (in_set[i]) {
      // If any predecessor path passes through a tainted (outside) node,
      // the set is non-convex.
      for (NodeId p : preds_[i])
        if (!in_set[p] && tainted[p]) return false;
    } else {
      tainted[i] = from_s_outside;
    }
  }
  return true;
}

}  // namespace jitise::dfg
