# Empty dependencies file for jitise_cli.
# This may be replaced when dependencies are built.
