file(REMOVE_RECURSE
  "CMakeFiles/jitise_cli.dir/jitise_cli.cpp.o"
  "CMakeFiles/jitise_cli.dir/jitise_cli.cpp.o.d"
  "jitise_cli"
  "jitise_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
