file(REMOVE_RECURSE
  "CMakeFiles/adaptive_vm.dir/adaptive_vm.cpp.o"
  "CMakeFiles/adaptive_vm.dir/adaptive_vm.cpp.o.d"
  "adaptive_vm"
  "adaptive_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
