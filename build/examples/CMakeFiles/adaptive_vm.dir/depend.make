# Empty dependencies file for adaptive_vm.
# This may be replaced when dependencies are built.
