# Empty dependencies file for ise_test.
# This may be replaced when dependencies are built.
