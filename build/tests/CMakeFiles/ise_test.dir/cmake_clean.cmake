file(REMOVE_RECURSE
  "CMakeFiles/ise_test.dir/ise_test.cpp.o"
  "CMakeFiles/ise_test.dir/ise_test.cpp.o.d"
  "ise_test"
  "ise_test.pdb"
  "ise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
