file(REMOVE_RECURSE
  "CMakeFiles/jit_test.dir/jit_test.cpp.o"
  "CMakeFiles/jit_test.dir/jit_test.cpp.o.d"
  "jit_test"
  "jit_test.pdb"
  "jit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
