file(REMOVE_RECURSE
  "CMakeFiles/hwlib_test.dir/hwlib_test.cpp.o"
  "CMakeFiles/hwlib_test.dir/hwlib_test.cpp.o.d"
  "hwlib_test"
  "hwlib_test.pdb"
  "hwlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
