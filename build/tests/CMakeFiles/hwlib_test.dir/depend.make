# Empty dependencies file for hwlib_test.
# This may be replaced when dependencies are built.
