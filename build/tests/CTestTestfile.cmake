# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/ise_test[1]_include.cmake")
include("/root/repo/build/tests/hwlib_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_test[1]_include.cmake")
include("/root/repo/build/tests/jit_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
