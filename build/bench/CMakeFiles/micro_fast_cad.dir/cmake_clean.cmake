file(REMOVE_RECURSE
  "CMakeFiles/micro_fast_cad.dir/micro_fast_cad.cpp.o"
  "CMakeFiles/micro_fast_cad.dir/micro_fast_cad.cpp.o.d"
  "micro_fast_cad"
  "micro_fast_cad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fast_cad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
