# Empty dependencies file for micro_fast_cad.
# This may be replaced when dependencies are built.
