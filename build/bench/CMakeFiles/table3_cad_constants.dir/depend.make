# Empty dependencies file for table3_cad_constants.
# This may be replaced when dependencies are built.
