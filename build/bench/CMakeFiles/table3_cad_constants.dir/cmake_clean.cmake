file(REMOVE_RECURSE
  "CMakeFiles/table3_cad_constants.dir/table3_cad_constants.cpp.o"
  "CMakeFiles/table3_cad_constants.dir/table3_cad_constants.cpp.o.d"
  "table3_cad_constants"
  "table3_cad_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cad_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
