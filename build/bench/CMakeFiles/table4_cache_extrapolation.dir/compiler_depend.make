# Empty compiler generated dependencies file for table4_cache_extrapolation.
# This may be replaced when dependencies are built.
