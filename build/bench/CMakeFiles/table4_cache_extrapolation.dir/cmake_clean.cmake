file(REMOVE_RECURSE
  "CMakeFiles/table4_cache_extrapolation.dir/table4_cache_extrapolation.cpp.o"
  "CMakeFiles/table4_cache_extrapolation.dir/table4_cache_extrapolation.cpp.o.d"
  "table4_cache_extrapolation"
  "table4_cache_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cache_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
