file(REMOVE_RECURSE
  "CMakeFiles/micro_ise_algorithms.dir/micro_ise_algorithms.cpp.o"
  "CMakeFiles/micro_ise_algorithms.dir/micro_ise_algorithms.cpp.o.d"
  "micro_ise_algorithms"
  "micro_ise_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ise_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
