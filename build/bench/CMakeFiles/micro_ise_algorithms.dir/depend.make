# Empty dependencies file for micro_ise_algorithms.
# This may be replaced when dependencies are built.
