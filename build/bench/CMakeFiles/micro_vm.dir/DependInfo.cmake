
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_vm.cpp" "bench/CMakeFiles/micro_vm.dir/micro_vm.cpp.o" "gcc" "bench/CMakeFiles/micro_vm.dir/micro_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/jitise_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/jitise_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/cad/CMakeFiles/jitise_cad.dir/DependInfo.cmake"
  "/root/repo/build/src/datapath/CMakeFiles/jitise_datapath.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/jitise_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/woolcano/CMakeFiles/jitise_woolcano.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/jitise_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/hwlib/CMakeFiles/jitise_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/ise/CMakeFiles/jitise_ise.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jitise_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/jitise_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jitise_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jitise_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
