# Empty dependencies file for table2_overheads.
# This may be replaced when dependencies are built.
