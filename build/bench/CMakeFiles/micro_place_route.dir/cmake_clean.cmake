file(REMOVE_RECURSE
  "CMakeFiles/micro_place_route.dir/micro_place_route.cpp.o"
  "CMakeFiles/micro_place_route.dir/micro_place_route.cpp.o.d"
  "micro_place_route"
  "micro_place_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_place_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
