
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/coverage.cpp" "src/vm/CMakeFiles/jitise_vm.dir/coverage.cpp.o" "gcc" "src/vm/CMakeFiles/jitise_vm.dir/coverage.cpp.o.d"
  "/root/repo/src/vm/eval.cpp" "src/vm/CMakeFiles/jitise_vm.dir/eval.cpp.o" "gcc" "src/vm/CMakeFiles/jitise_vm.dir/eval.cpp.o.d"
  "/root/repo/src/vm/interpreter.cpp" "src/vm/CMakeFiles/jitise_vm.dir/interpreter.cpp.o" "gcc" "src/vm/CMakeFiles/jitise_vm.dir/interpreter.cpp.o.d"
  "/root/repo/src/vm/time_model.cpp" "src/vm/CMakeFiles/jitise_vm.dir/time_model.cpp.o" "gcc" "src/vm/CMakeFiles/jitise_vm.dir/time_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/jitise_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jitise_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
