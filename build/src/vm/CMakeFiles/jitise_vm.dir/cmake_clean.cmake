file(REMOVE_RECURSE
  "CMakeFiles/jitise_vm.dir/coverage.cpp.o"
  "CMakeFiles/jitise_vm.dir/coverage.cpp.o.d"
  "CMakeFiles/jitise_vm.dir/eval.cpp.o"
  "CMakeFiles/jitise_vm.dir/eval.cpp.o.d"
  "CMakeFiles/jitise_vm.dir/interpreter.cpp.o"
  "CMakeFiles/jitise_vm.dir/interpreter.cpp.o.d"
  "CMakeFiles/jitise_vm.dir/time_model.cpp.o"
  "CMakeFiles/jitise_vm.dir/time_model.cpp.o.d"
  "libjitise_vm.a"
  "libjitise_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
