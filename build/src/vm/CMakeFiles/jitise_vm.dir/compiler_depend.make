# Empty compiler generated dependencies file for jitise_vm.
# This may be replaced when dependencies are built.
