file(REMOVE_RECURSE
  "libjitise_vm.a"
)
