file(REMOVE_RECURSE
  "libjitise_fpga.a"
)
