file(REMOVE_RECURSE
  "CMakeFiles/jitise_fpga.dir/bitgen.cpp.o"
  "CMakeFiles/jitise_fpga.dir/bitgen.cpp.o.d"
  "CMakeFiles/jitise_fpga.dir/fabric.cpp.o"
  "CMakeFiles/jitise_fpga.dir/fabric.cpp.o.d"
  "CMakeFiles/jitise_fpga.dir/place.cpp.o"
  "CMakeFiles/jitise_fpga.dir/place.cpp.o.d"
  "CMakeFiles/jitise_fpga.dir/report.cpp.o"
  "CMakeFiles/jitise_fpga.dir/report.cpp.o.d"
  "CMakeFiles/jitise_fpga.dir/route.cpp.o"
  "CMakeFiles/jitise_fpga.dir/route.cpp.o.d"
  "CMakeFiles/jitise_fpga.dir/sta.cpp.o"
  "CMakeFiles/jitise_fpga.dir/sta.cpp.o.d"
  "CMakeFiles/jitise_fpga.dir/synthesis.cpp.o"
  "CMakeFiles/jitise_fpga.dir/synthesis.cpp.o.d"
  "libjitise_fpga.a"
  "libjitise_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
