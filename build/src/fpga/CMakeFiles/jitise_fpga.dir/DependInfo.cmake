
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/bitgen.cpp" "src/fpga/CMakeFiles/jitise_fpga.dir/bitgen.cpp.o" "gcc" "src/fpga/CMakeFiles/jitise_fpga.dir/bitgen.cpp.o.d"
  "/root/repo/src/fpga/fabric.cpp" "src/fpga/CMakeFiles/jitise_fpga.dir/fabric.cpp.o" "gcc" "src/fpga/CMakeFiles/jitise_fpga.dir/fabric.cpp.o.d"
  "/root/repo/src/fpga/place.cpp" "src/fpga/CMakeFiles/jitise_fpga.dir/place.cpp.o" "gcc" "src/fpga/CMakeFiles/jitise_fpga.dir/place.cpp.o.d"
  "/root/repo/src/fpga/report.cpp" "src/fpga/CMakeFiles/jitise_fpga.dir/report.cpp.o" "gcc" "src/fpga/CMakeFiles/jitise_fpga.dir/report.cpp.o.d"
  "/root/repo/src/fpga/route.cpp" "src/fpga/CMakeFiles/jitise_fpga.dir/route.cpp.o" "gcc" "src/fpga/CMakeFiles/jitise_fpga.dir/route.cpp.o.d"
  "/root/repo/src/fpga/sta.cpp" "src/fpga/CMakeFiles/jitise_fpga.dir/sta.cpp.o" "gcc" "src/fpga/CMakeFiles/jitise_fpga.dir/sta.cpp.o.d"
  "/root/repo/src/fpga/synthesis.cpp" "src/fpga/CMakeFiles/jitise_fpga.dir/synthesis.cpp.o" "gcc" "src/fpga/CMakeFiles/jitise_fpga.dir/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwlib/CMakeFiles/jitise_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jitise_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jitise_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
