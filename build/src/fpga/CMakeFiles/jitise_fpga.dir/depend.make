# Empty dependencies file for jitise_fpga.
# This may be replaced when dependencies are built.
