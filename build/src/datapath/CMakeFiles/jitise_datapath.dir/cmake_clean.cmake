file(REMOVE_RECURSE
  "CMakeFiles/jitise_datapath.dir/project.cpp.o"
  "CMakeFiles/jitise_datapath.dir/project.cpp.o.d"
  "CMakeFiles/jitise_datapath.dir/vhdl_gen.cpp.o"
  "CMakeFiles/jitise_datapath.dir/vhdl_gen.cpp.o.d"
  "libjitise_datapath.a"
  "libjitise_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
