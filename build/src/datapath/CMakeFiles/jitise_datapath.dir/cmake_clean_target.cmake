file(REMOVE_RECURSE
  "libjitise_datapath.a"
)
