# Empty compiler generated dependencies file for jitise_datapath.
# This may be replaced when dependencies are built.
