file(REMOVE_RECURSE
  "libjitise_opt.a"
)
