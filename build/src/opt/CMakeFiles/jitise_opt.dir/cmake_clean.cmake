file(REMOVE_RECURSE
  "CMakeFiles/jitise_opt.dir/passes.cpp.o"
  "CMakeFiles/jitise_opt.dir/passes.cpp.o.d"
  "libjitise_opt.a"
  "libjitise_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
