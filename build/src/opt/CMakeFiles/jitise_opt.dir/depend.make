# Empty dependencies file for jitise_opt.
# This may be replaced when dependencies are built.
