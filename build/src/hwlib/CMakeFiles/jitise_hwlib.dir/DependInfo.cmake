
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwlib/component.cpp" "src/hwlib/CMakeFiles/jitise_hwlib.dir/component.cpp.o" "gcc" "src/hwlib/CMakeFiles/jitise_hwlib.dir/component.cpp.o.d"
  "/root/repo/src/hwlib/netlist.cpp" "src/hwlib/CMakeFiles/jitise_hwlib.dir/netlist.cpp.o" "gcc" "src/hwlib/CMakeFiles/jitise_hwlib.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/jitise_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jitise_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
