# Empty compiler generated dependencies file for jitise_hwlib.
# This may be replaced when dependencies are built.
