file(REMOVE_RECURSE
  "libjitise_hwlib.a"
)
