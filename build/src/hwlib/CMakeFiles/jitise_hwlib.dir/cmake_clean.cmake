file(REMOVE_RECURSE
  "CMakeFiles/jitise_hwlib.dir/component.cpp.o"
  "CMakeFiles/jitise_hwlib.dir/component.cpp.o.d"
  "CMakeFiles/jitise_hwlib.dir/netlist.cpp.o"
  "CMakeFiles/jitise_hwlib.dir/netlist.cpp.o.d"
  "libjitise_hwlib.a"
  "libjitise_hwlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_hwlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
