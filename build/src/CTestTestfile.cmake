# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("vm")
subdirs("opt")
subdirs("dfg")
subdirs("ise")
subdirs("hwlib")
subdirs("estimation")
subdirs("datapath")
subdirs("fpga")
subdirs("cad")
subdirs("woolcano")
subdirs("jit")
subdirs("apps")
