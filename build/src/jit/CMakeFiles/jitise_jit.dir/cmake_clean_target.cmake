file(REMOVE_RECURSE
  "libjitise_jit.a"
)
