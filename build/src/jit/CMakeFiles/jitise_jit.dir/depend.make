# Empty dependencies file for jitise_jit.
# This may be replaced when dependencies are built.
