file(REMOVE_RECURSE
  "CMakeFiles/jitise_jit.dir/breakeven.cpp.o"
  "CMakeFiles/jitise_jit.dir/breakeven.cpp.o.d"
  "CMakeFiles/jitise_jit.dir/cache.cpp.o"
  "CMakeFiles/jitise_jit.dir/cache.cpp.o.d"
  "CMakeFiles/jitise_jit.dir/cache_io.cpp.o"
  "CMakeFiles/jitise_jit.dir/cache_io.cpp.o.d"
  "CMakeFiles/jitise_jit.dir/runtime.cpp.o"
  "CMakeFiles/jitise_jit.dir/runtime.cpp.o.d"
  "CMakeFiles/jitise_jit.dir/specializer.cpp.o"
  "CMakeFiles/jitise_jit.dir/specializer.cpp.o.d"
  "libjitise_jit.a"
  "libjitise_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
