# Empty compiler generated dependencies file for jitise_ise.
# This may be replaced when dependencies are built.
