
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ise/candidate.cpp" "src/ise/CMakeFiles/jitise_ise.dir/candidate.cpp.o" "gcc" "src/ise/CMakeFiles/jitise_ise.dir/candidate.cpp.o.d"
  "/root/repo/src/ise/identify.cpp" "src/ise/CMakeFiles/jitise_ise.dir/identify.cpp.o" "gcc" "src/ise/CMakeFiles/jitise_ise.dir/identify.cpp.o.d"
  "/root/repo/src/ise/pruning.cpp" "src/ise/CMakeFiles/jitise_ise.dir/pruning.cpp.o" "gcc" "src/ise/CMakeFiles/jitise_ise.dir/pruning.cpp.o.d"
  "/root/repo/src/ise/selection.cpp" "src/ise/CMakeFiles/jitise_ise.dir/selection.cpp.o" "gcc" "src/ise/CMakeFiles/jitise_ise.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/jitise_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jitise_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jitise_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jitise_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
