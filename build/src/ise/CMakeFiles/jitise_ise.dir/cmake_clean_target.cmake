file(REMOVE_RECURSE
  "libjitise_ise.a"
)
