file(REMOVE_RECURSE
  "CMakeFiles/jitise_ise.dir/candidate.cpp.o"
  "CMakeFiles/jitise_ise.dir/candidate.cpp.o.d"
  "CMakeFiles/jitise_ise.dir/identify.cpp.o"
  "CMakeFiles/jitise_ise.dir/identify.cpp.o.d"
  "CMakeFiles/jitise_ise.dir/pruning.cpp.o"
  "CMakeFiles/jitise_ise.dir/pruning.cpp.o.d"
  "CMakeFiles/jitise_ise.dir/selection.cpp.o"
  "CMakeFiles/jitise_ise.dir/selection.cpp.o.d"
  "libjitise_ise.a"
  "libjitise_ise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_ise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
