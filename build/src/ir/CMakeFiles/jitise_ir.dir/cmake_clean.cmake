file(REMOVE_RECURSE
  "CMakeFiles/jitise_ir.dir/builder.cpp.o"
  "CMakeFiles/jitise_ir.dir/builder.cpp.o.d"
  "CMakeFiles/jitise_ir.dir/cfg.cpp.o"
  "CMakeFiles/jitise_ir.dir/cfg.cpp.o.d"
  "CMakeFiles/jitise_ir.dir/parser.cpp.o"
  "CMakeFiles/jitise_ir.dir/parser.cpp.o.d"
  "CMakeFiles/jitise_ir.dir/printer.cpp.o"
  "CMakeFiles/jitise_ir.dir/printer.cpp.o.d"
  "CMakeFiles/jitise_ir.dir/random_program.cpp.o"
  "CMakeFiles/jitise_ir.dir/random_program.cpp.o.d"
  "CMakeFiles/jitise_ir.dir/verifier.cpp.o"
  "CMakeFiles/jitise_ir.dir/verifier.cpp.o.d"
  "libjitise_ir.a"
  "libjitise_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
