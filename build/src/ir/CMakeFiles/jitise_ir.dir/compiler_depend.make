# Empty compiler generated dependencies file for jitise_ir.
# This may be replaced when dependencies are built.
