file(REMOVE_RECURSE
  "libjitise_ir.a"
)
