
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/embedded.cpp" "src/apps/CMakeFiles/jitise_apps.dir/embedded.cpp.o" "gcc" "src/apps/CMakeFiles/jitise_apps.dir/embedded.cpp.o.d"
  "/root/repo/src/apps/filler.cpp" "src/apps/CMakeFiles/jitise_apps.dir/filler.cpp.o" "gcc" "src/apps/CMakeFiles/jitise_apps.dir/filler.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/jitise_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/jitise_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/scientific.cpp" "src/apps/CMakeFiles/jitise_apps.dir/scientific.cpp.o" "gcc" "src/apps/CMakeFiles/jitise_apps.dir/scientific.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/jitise_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jitise_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jitise_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
