# Empty dependencies file for jitise_apps.
# This may be replaced when dependencies are built.
