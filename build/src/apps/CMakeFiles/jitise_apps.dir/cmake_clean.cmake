file(REMOVE_RECURSE
  "CMakeFiles/jitise_apps.dir/embedded.cpp.o"
  "CMakeFiles/jitise_apps.dir/embedded.cpp.o.d"
  "CMakeFiles/jitise_apps.dir/filler.cpp.o"
  "CMakeFiles/jitise_apps.dir/filler.cpp.o.d"
  "CMakeFiles/jitise_apps.dir/registry.cpp.o"
  "CMakeFiles/jitise_apps.dir/registry.cpp.o.d"
  "CMakeFiles/jitise_apps.dir/scientific.cpp.o"
  "CMakeFiles/jitise_apps.dir/scientific.cpp.o.d"
  "libjitise_apps.a"
  "libjitise_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
