file(REMOVE_RECURSE
  "libjitise_apps.a"
)
