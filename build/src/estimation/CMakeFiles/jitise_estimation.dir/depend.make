# Empty dependencies file for jitise_estimation.
# This may be replaced when dependencies are built.
