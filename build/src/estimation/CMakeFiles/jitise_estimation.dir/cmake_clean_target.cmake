file(REMOVE_RECURSE
  "libjitise_estimation.a"
)
