file(REMOVE_RECURSE
  "CMakeFiles/jitise_estimation.dir/estimator.cpp.o"
  "CMakeFiles/jitise_estimation.dir/estimator.cpp.o.d"
  "libjitise_estimation.a"
  "libjitise_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
