file(REMOVE_RECURSE
  "libjitise_support.a"
)
