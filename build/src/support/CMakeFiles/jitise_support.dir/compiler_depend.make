# Empty compiler generated dependencies file for jitise_support.
# This may be replaced when dependencies are built.
