file(REMOVE_RECURSE
  "CMakeFiles/jitise_support.dir/duration.cpp.o"
  "CMakeFiles/jitise_support.dir/duration.cpp.o.d"
  "CMakeFiles/jitise_support.dir/table.cpp.o"
  "CMakeFiles/jitise_support.dir/table.cpp.o.d"
  "libjitise_support.a"
  "libjitise_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
