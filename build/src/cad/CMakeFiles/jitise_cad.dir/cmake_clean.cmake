file(REMOVE_RECURSE
  "CMakeFiles/jitise_cad.dir/flow.cpp.o"
  "CMakeFiles/jitise_cad.dir/flow.cpp.o.d"
  "CMakeFiles/jitise_cad.dir/runtime_model.cpp.o"
  "CMakeFiles/jitise_cad.dir/runtime_model.cpp.o.d"
  "CMakeFiles/jitise_cad.dir/syntax.cpp.o"
  "CMakeFiles/jitise_cad.dir/syntax.cpp.o.d"
  "libjitise_cad.a"
  "libjitise_cad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_cad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
