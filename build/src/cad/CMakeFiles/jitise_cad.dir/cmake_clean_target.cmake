file(REMOVE_RECURSE
  "libjitise_cad.a"
)
