# Empty compiler generated dependencies file for jitise_cad.
# This may be replaced when dependencies are built.
