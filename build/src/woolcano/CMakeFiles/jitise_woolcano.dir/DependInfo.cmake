
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/woolcano/asip.cpp" "src/woolcano/CMakeFiles/jitise_woolcano.dir/asip.cpp.o" "gcc" "src/woolcano/CMakeFiles/jitise_woolcano.dir/asip.cpp.o.d"
  "/root/repo/src/woolcano/custom_instruction.cpp" "src/woolcano/CMakeFiles/jitise_woolcano.dir/custom_instruction.cpp.o" "gcc" "src/woolcano/CMakeFiles/jitise_woolcano.dir/custom_instruction.cpp.o.d"
  "/root/repo/src/woolcano/rewriter.cpp" "src/woolcano/CMakeFiles/jitise_woolcano.dir/rewriter.cpp.o" "gcc" "src/woolcano/CMakeFiles/jitise_woolcano.dir/rewriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/jitise_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/ise/CMakeFiles/jitise_ise.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jitise_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/hwlib/CMakeFiles/jitise_hwlib.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/jitise_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jitise_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jitise_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
