file(REMOVE_RECURSE
  "CMakeFiles/jitise_woolcano.dir/asip.cpp.o"
  "CMakeFiles/jitise_woolcano.dir/asip.cpp.o.d"
  "CMakeFiles/jitise_woolcano.dir/custom_instruction.cpp.o"
  "CMakeFiles/jitise_woolcano.dir/custom_instruction.cpp.o.d"
  "CMakeFiles/jitise_woolcano.dir/rewriter.cpp.o"
  "CMakeFiles/jitise_woolcano.dir/rewriter.cpp.o.d"
  "libjitise_woolcano.a"
  "libjitise_woolcano.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_woolcano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
