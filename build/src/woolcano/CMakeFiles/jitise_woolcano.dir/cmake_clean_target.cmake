file(REMOVE_RECURSE
  "libjitise_woolcano.a"
)
