# Empty compiler generated dependencies file for jitise_woolcano.
# This may be replaced when dependencies are built.
