# Empty dependencies file for jitise_dfg.
# This may be replaced when dependencies are built.
