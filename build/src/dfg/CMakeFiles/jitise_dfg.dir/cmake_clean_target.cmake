file(REMOVE_RECURSE
  "libjitise_dfg.a"
)
