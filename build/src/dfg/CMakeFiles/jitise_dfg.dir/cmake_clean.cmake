file(REMOVE_RECURSE
  "CMakeFiles/jitise_dfg.dir/export.cpp.o"
  "CMakeFiles/jitise_dfg.dir/export.cpp.o.d"
  "CMakeFiles/jitise_dfg.dir/graph.cpp.o"
  "CMakeFiles/jitise_dfg.dir/graph.cpp.o.d"
  "libjitise_dfg.a"
  "libjitise_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitise_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
